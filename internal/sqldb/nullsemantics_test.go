package sqldb

import (
	"reflect"
	"testing"
)

// These tests pin the expression-layer NULL semantics and type-coercion
// edges that became user-visible with the SQL wire surface: before it,
// only internal phase-2 queries exercised the evaluator.

func TestNullInInList(t *testing.T) {
	db := newPeopleDB(t) // dave has score NULL

	// x IN (..., NULL): matches behave normally; a non-matching x with a
	// NULL in the list yields NULL (filtered), not FALSE.
	res := mustExec(t, db, "SELECT name FROM people WHERE age IN (30, NULL) ORDER BY name")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"alice"}) {
		t.Fatalf("IN with NULL list rows = %v", got)
	}

	// NOT IN with a NULL in the list can never be TRUE: every row drops.
	res = mustExec(t, db, "SELECT name FROM people WHERE age NOT IN (30, NULL)")
	if len(res.Rows) != 0 {
		t.Fatalf("NOT IN (…, NULL) kept rows: %v", rowsAsStrings(res))
	}

	// A NULL probe value is never IN anything.
	res = mustExec(t, db, "SELECT name FROM people WHERE score IN (9.5, 7.25) ORDER BY name")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"alice", "bob"}) {
		t.Fatalf("NULL probe rows = %v", got)
	}
	res = mustExec(t, db, "SELECT name FROM people WHERE score NOT IN (1.0)")
	for _, r := range rowsAsStrings(res) {
		if r == "dave" {
			t.Fatal("NULL score passed NOT IN")
		}
	}
}

func TestNullOrderingInOrderBy(t *testing.T) {
	db := newPeopleDB(t)
	// NULL sorts first ascending (Compare: NULL < everything), last
	// descending — and is stable against real values.
	res := mustExec(t, db, "SELECT name, score FROM people ORDER BY score, name")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"dave|NULL", "bob|7.25", "carol|8", "alice|9.5"}) {
		t.Fatalf("ascending rows = %v", got)
	}
	res = mustExec(t, db, "SELECT name FROM people ORDER BY score DESC")
	if got := rowsAsStrings(res); got[len(got)-1] != "dave" {
		t.Fatalf("descending rows = %v", got)
	}
}

func TestNullComparisonsFilter(t *testing.T) {
	db := newPeopleDB(t)
	// score = score is NULL for dave's NULL score: comparisons with NULL
	// never pass WHERE.
	res := mustExec(t, db, "SELECT COUNT(*) FROM people WHERE score = score")
	if res.Rows[0][0].Int != 3 {
		t.Fatalf("score = score count = %v", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT name FROM people WHERE score IS NULL")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"dave"}) {
		t.Fatalf("IS NULL rows = %v", got)
	}
}

func TestHashIndexIntFloatWidening(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE m (fv FLOAT, iv INT, tag TEXT)")
	mustExec(t, db, "INSERT INTO m VALUES (2.0, 2, 'two'), (2.5, 3, 'half'), (4.0, 4, 'four')")
	mustExec(t, db, "CREATE INDEX m_fv ON m (fv)")
	mustExec(t, db, "CREATE INDEX m_iv ON m (iv)")

	// An INT literal probing a FLOAT index must widen (2 hits 2.0).
	res := mustExec(t, db, "SELECT tag FROM m WHERE fv = 2")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"two"}) {
		t.Fatalf("INT probe on FLOAT index rows = %v", got)
	}
	// A FLOAT literal probing an INT index: 4.0 hits 4 …
	res = mustExec(t, db, "SELECT tag FROM m WHERE iv = 4.0")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"four"}) {
		t.Fatalf("FLOAT probe on INT index rows = %v", got)
	}
	// … and a fractional probe hits nothing rather than erroring.
	res = mustExec(t, db, "SELECT tag FROM m WHERE iv = 2.5")
	if len(res.Rows) != 0 {
		t.Fatalf("fractional probe rows = %v", rowsAsStrings(res))
	}
	// NULL probe through the index path returns nothing (NULL = NULL is
	// not TRUE).
	res = mustExec(t, db, "SELECT tag FROM m WHERE fv = NULL")
	if len(res.Rows) != 0 {
		t.Fatalf("NULL probe rows = %v", rowsAsStrings(res))
	}

	// The index path and the scan path agree with each other: same query
	// against an unindexed copy.
	mustExec(t, db, "CREATE TABLE mcopy (fv FLOAT, iv INT, tag TEXT)")
	mustExec(t, db, "INSERT INTO mcopy VALUES (2.0, 2, 'two'), (2.5, 3, 'half'), (4.0, 4, 'four')")
	a := mustExec(t, db, "SELECT tag FROM m WHERE fv = 2")
	b := mustExec(t, db, "SELECT tag FROM mcopy WHERE fv = 2")
	if !reflect.DeepEqual(rowsAsStrings(a), rowsAsStrings(b)) {
		t.Fatalf("index path %v != scan path %v", rowsAsStrings(a), rowsAsStrings(b))
	}
}

func TestIntFloatWideningInGroupBy(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE g (v FLOAT)")
	mustExec(t, db, "INSERT INTO g VALUES (1.0), (1.0), (2.5)")
	// 1 (INT literal arithmetic) and 1.0 group/hash identically.
	res := mustExec(t, db, "SELECT v, COUNT(*) FROM g GROUP BY v ORDER BY v")
	if got := rowsAsStrings(res); !reflect.DeepEqual(got, []string{"1|2", "2.5|1"}) {
		t.Fatalf("group rows = %v", got)
	}
}

package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return stmt, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

// accept consumes the token if it matches; reports whether it did.
func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		t := p.cur()
		p.advance()
		return t, nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return token{}, p.errorf("expected %s", want)
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	where := t.text
	if t.kind == tokEOF {
		where = "end of input"
	}
	return fmt.Errorf("sqldb: parse error near %q (offset %d): %s", where, t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	default:
		return nil, p.errorf("expected SELECT, CREATE, DROP, INSERT, UPDATE, or DELETE")
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	if p.accept(tokKeyword, "INDEX") {
		return p.parseCreateIndex()
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		ctype, err := p.columnType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ColumnDef{Name: cname, Type: ctype})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
}

func (p *parser) columnType() (ColumnType, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected column type")
	}
	p.advance()
	switch t.text {
	case "INT", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE":
		return TypeFloat, nil
	case "TEXT":
		return TypeText, nil
	case "VARCHAR":
		// Accept VARCHAR(n) and ignore the length.
		if p.accept(tokSymbol, "(") {
			if _, err := p.expect(tokInt, ""); err != nil {
				return 0, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return 0, err
			}
		}
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return 0, p.errorf("unknown column type %s", t.text)
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return &InsertStmt{Table: name, Rows: rows}, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Column: col, Value: val})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.accept(tokKeyword, "WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = cond
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.advance() // SELECT
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(tokKeyword, "DISTINCT")
	if p.accept(tokSymbol, "*") {
		s.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.at(tokIdent, "") {
				item.Alias = p.cur().text
				p.advance()
			}
			s.Items = append(s.Items, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "INTO") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.Into = name
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, ref)
	for {
		if p.accept(tokSymbol, ",") {
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			continue
		}
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Ref: ref, On: cond})
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if p.accept(tokKeyword, "HAVING") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Having = e
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %s", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.accept(tokSymbol, "(") {
		// Table function: name(constExpr, ...).
		ref.IsFunc = true
		if !p.accept(tokSymbol, ")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return TableRef{}, err
				}
				ref.Args = append(ref.Args, arg)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return TableRef{}, err
			}
		}
	}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.advance()
	}
	return ref, nil
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		name := p.cur().text
		p.advance()
		return name, nil
	}
	return "", p.errorf("expected identifier")
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= | <> | != | < | <= | > | >=) addExpr)?
//	         | addExpr IS [NOT] NULL
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/|%) unary)*
//	unary   := - unary | primary
//	primary := literal | CASE ... END | func(args) | colref | ( expr )

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	// x [NOT] LIKE / IN / BETWEEN
	notPrefix := false
	if p.at(tokKeyword, "NOT") {
		next := p.toks[p.pos+1]
		if next.kind == tokKeyword && (next.text == "LIKE" || next.text == "IN" || next.text == "BETWEEN") {
			p.advance()
			notPrefix = true
		}
	}
	switch {
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: l, Pattern: pat, Not: notPrefix}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InExpr{X: l, Not: notPrefix}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: notPrefix}, nil
	}
	if notPrefix {
		return nil, p.errorf("dangling NOT")
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		case p.accept(tokSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %s", t.text)
		}
		return &Literal{Val: Int(v)}, nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %s", t.text)
		}
		return &Literal{Val: Float(v)}, nil
	case t.kind == tokString:
		p.advance()
		return &Literal{Val: Text(t.text)}, nil
	case p.accept(tokKeyword, "NULL"):
		return &Literal{Val: Null()}, nil
	case p.accept(tokKeyword, "TRUE"):
		return &Literal{Val: Bool(true)}, nil
	case p.accept(tokKeyword, "FALSE"):
		return &Literal{Val: Bool(false)}, nil
	case p.accept(tokKeyword, "CASE"):
		return p.parseCase()
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.advance()
		// Function call?
		if p.accept(tokSymbol, "(") {
			return p.parseCallArgs(strings.ToUpper(t.text))
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errorf("expected expression")
	}
}

func (p *parser) parseCallArgs(name string) (Expr, error) {
	call := &FuncCall{Name: name}
	if p.accept(tokSymbol, "*") {
		call.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.accept(tokSymbol, ")") {
		return call, nil
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	for {
		if _, err := p.expect(tokKeyword, "WHEN"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
		if p.at(tokKeyword, "WHEN") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

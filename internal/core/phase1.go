package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"fuzzydup/internal/bforder"
	"fuzzydup/internal/nnindex"
)

// LookupOrder selects the phase-1 index lookup order (Section 4.1.1).
type LookupOrder int

// Lookup orders compared in Figure 8.
const (
	// OrderBF is the breadth-first order: each tuple is looked up right
	// after its nearest neighbors, localizing index accesses.
	OrderBF LookupOrder = iota
	// OrderRandom is the random-permutation baseline.
	OrderRandom
	// OrderSequential scans tuples in ID order.
	OrderSequential
)

// String implements fmt.Stringer.
func (o LookupOrder) String() string {
	switch o {
	case OrderBF:
		return "bf"
	case OrderRandom:
		return "random"
	case OrderSequential:
		return "sequential"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// Phase1Options tunes the nearest-neighbor computation phase.
type Phase1Options struct {
	// Order is the lookup order (default OrderBF).
	Order LookupOrder
	// Seed seeds the random order; ignored otherwise.
	Seed int64
	// Rand, when non-nil, supplies the random order's source instead of
	// Seed. Injecting a *rand.Rand keeps concurrent phase-1 runs off any
	// shared source and makes order experiments reproducible.
	Rand *rand.Rand
	// Ctx, when non-nil, is polled between index lookups: once it is
	// cancelled, the remaining lookups are skipped and ComputeNN returns
	// ctx.Err(). Phase 1 dominates the algorithm's cost, so this is where
	// cancellation must land for a killed job to stop burning CPU.
	Ctx context.Context
	// MaxQueue bounds the BF queue (<= 0 selects the package default).
	MaxQueue int
	// Parallel, when > 1, fans the lookups across that many goroutines.
	// Only honored for indexes that declare themselves safe for
	// concurrent queries (Exact and VPTree are; the disk-backed q-gram
	// index is not — its buffer pool and memo serialize poorly and the
	// BF-order locality it depends on would be destroyed anyway). The
	// output is identical to a serial run.
	Parallel int
	// Progress, when non-nil, is called after each tuple's lookup with
	// the number completed so far and the total. Phase 1 dominates the
	// algorithm's cost (the paper's complexity analysis), so this is the
	// hook long-running callers want. Under Parallel it is invoked from
	// worker goroutines (in completion order, with monotone counts).
	Progress func(done, total int)
	// Stats, when non-nil, accumulates phase-1 instrumentation: lookups
	// completed, index probes issued, and the worker fan-out actually
	// used. Counters are atomic, so one Stats value is safe across the
	// parallel path, and callers may read them while the run is live.
	Stats *Phase1Stats
	// Prefilter asks callers that build their own per-shard indexes (the
	// blocked pipeline's SolveBlock) to construct signature-prefiltered
	// nnindex.Pruned indexes instead of Exact ones. ComputeNN itself
	// ignores it — the index it receives is already built.
	Prefilter bool
}

// Phase1Stats counts the work of one (or several) ComputeNN runs. All
// fields are atomic: one Stats value may be shared across concurrent
// ComputeNN calls (the blocked pipeline solves blocks in parallel
// against a single accumulator).
type Phase1Stats struct {
	// Lookups is the number of tuples whose neighbor lists were fetched.
	Lookups atomic.Int64
	// Probes is the number of index probe calls issued (TopK, Range, and
	// GrowthCount all count as one probe each).
	Probes atomic.Int64
	// Workers is the lookup fan-out of the most recent run: 1 for the
	// serial orders, the effective goroutine count under Parallel.
	Workers atomic.Int32
	// Pruned, Candidates, and Fallbacks mirror the prefiltered index's
	// counters (nnindex.Pruned, or anything else implementing
	// PrunedReporter): records excluded by a certified bound without an
	// exact metric call, records exactly verified, and whole queries
	// that fell back to the exact scan. All zero when the index carries
	// no prefilter.
	Pruned     atomic.Int64
	Candidates atomic.Int64
	Fallbacks  atomic.Int64
}

// PrunedReporter is implemented by indexes that prune with certified
// bounds and account for it (nnindex.Pruned). ComputeNN snapshots the
// cumulative counters around a run and adds the delta to its Stats, so
// shared indexes attribute work to the runs that caused it.
type PrunedReporter interface {
	PrunedCounters() (pruned, candidates, fallbacks int64)
}

// addProbes is nil-safe so the hot path stays branch-light at the call
// sites.
func (s *Phase1Stats) addProbes(n int64) {
	if s != nil {
		s.Probes.Add(n)
	}
}

// ConcurrentQuerier marks an index whose query methods are safe for
// concurrent use. Phase 1 parallelizes only across such indexes.
type ConcurrentQuerier interface {
	ConcurrentQueries()
}

// ComputeNN runs phase 1 of the algorithm (Figure 5's PrepareNNLists): for
// every tuple, fetch its neighbor list under the cut specification — the
// K nearest neighbors for DE_S(K), all neighbors within θ for DE_D(θ) —
// and its neighborhood growth ng(v) = |{u : d(u,v) < p·nn(v)}| (self-
// inclusive). Tuples are looked up in the order given by opts, which does
// not change the output, only the index's access locality.
func ComputeNN(idx nnindex.Index, cut Cut, p float64, opts Phase1Options) (*NNRelation, error) {
	if err := cut.Validate(); err != nil {
		return nil, err
	}
	if p == 0 {
		p = DefaultP
	}
	if p < 0 {
		return nil, fmt.Errorf("core: growth factor p = %g must be positive", p)
	}
	n := idx.Len()
	rel := &NNRelation{Rows: make([]NNRow, n), Cut: cut, P: p}

	var done int64
	visit := func(id int) []int {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			// Cancelled: skip the lookup. The orders still walk every
			// remaining ID, but each visit is now a no-op, so the run
			// winds down without further index work.
			return nil
		}
		row, neighbors := lookupOne(idx, cut, p, id, opts.Stats)
		rel.Rows[id] = row
		if opts.Stats != nil {
			opts.Stats.Lookups.Add(1)
		}
		if opts.Progress != nil {
			opts.Progress(int(atomic.AddInt64(&done, 1)), n)
		}
		return neighbors
	}

	var reporter PrunedReporter
	var pruned0, cands0, falls0 int64
	if opts.Stats != nil {
		if r, ok := idx.(PrunedReporter); ok {
			reporter = r
			pruned0, cands0, falls0 = r.PrunedCounters()
		}
	}

	finish := func() (*NNRelation, error) {
		if reporter != nil {
			pruned1, cands1, falls1 := reporter.PrunedCounters()
			opts.Stats.Pruned.Add(pruned1 - pruned0)
			opts.Stats.Candidates.Add(cands1 - cands0)
			opts.Stats.Fallbacks.Add(falls1 - falls0)
		}
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		return rel, nil
	}

	if opts.Stats != nil {
		opts.Stats.Workers.Store(1)
	}
	if opts.Parallel > 1 {
		if _, ok := idx.(ConcurrentQuerier); ok {
			workers := opts.Parallel
			if workers > n {
				workers = n
			}
			if opts.Stats != nil {
				opts.Stats.Workers.Store(int32(workers))
			}
			parallelVisit(n, workers, visit)
			return finish()
		}
		// Fall through to the serial orders for indexes that cannot take
		// concurrent queries.
	}

	switch opts.Order {
	case OrderBF:
		bforder.BF(n, opts.MaxQueue, visit)
	case OrderRandom:
		if opts.Rand != nil {
			bforder.RandomFrom(n, opts.Rand, visit)
		} else {
			bforder.Random(n, opts.Seed, visit)
		}
	case OrderSequential:
		bforder.Sequential(n, visit)
	default:
		return nil, fmt.Errorf("core: unknown lookup order %d", int(opts.Order))
	}
	return finish()
}

// parallelVisit fans ids 0..n-1 across workers. Each row is written by
// exactly one goroutine, so no synchronization beyond the WaitGroup is
// needed.
func parallelVisit(n, workers int, visit func(id int) []int) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := int(atomic.AddInt64(&next, 1))
				if id >= n {
					return
				}
				visit(id)
			}
		}()
	}
	wg.Wait()
}

// lookupOne performs the per-tuple phase-1 work: fetch the neighbor list
// under the cut and compute the self-inclusive neighborhood growth.
func lookupOne(idx nnindex.Index, cut Cut, p float64, id int, stats *Phase1Stats) (NNRow, []int) {
	var list []nnindex.Neighbor
	if cut.IsSize() {
		list = idx.TopK(id, cut.MaxSize)
	} else {
		list = idx.Range(id, cut.Diameter)
	}
	stats.addProbes(1)
	ng := 1 // the tuple itself is inside its own growth sphere
	if len(list) > 0 {
		nn := list[0].Dist
		if nn == 0 {
			// An exact duplicate at distance zero: the paper assumes
			// distinct tuples have non-zero distances; we treat the
			// growth sphere as the smallest positive radius, which
			// counts exactly the zero-distance twins.
			ng += idx.GrowthCount(id, smallestPositive)
		} else {
			ng += idx.GrowthCount(id, p*nn)
		}
		stats.addProbes(1)
	} else if !cut.IsSize() {
		// Diameter cut with an empty θ-neighborhood: nn(v) > θ, so the
		// growth sphere cannot be derived from the range query. Such a
		// tuple can only ever be a singleton (any group mate would be
		// within θ), so its NG is never aggregated; fall back to the
		// index's nearest neighbor to keep the column meaningful.
		stats.addProbes(1)
		if nn := idx.TopK(id, 1); len(nn) > 0 && nn[0].Dist > 0 {
			ng += idx.GrowthCount(id, p*nn[0].Dist)
			stats.addProbes(1)
		}
	}
	neighbors := make([]int, len(list))
	for i, nb := range list {
		neighbors[i] = nb.ID
	}
	return NNRow{NNList: list, NG: ng}, neighbors
}

// ZeroDistanceRadius is the growth-sphere radius used for tuples whose
// nearest neighbor is at distance zero: the paper assumes distinct tuples
// have non-zero distances, so the sphere degenerates to the smallest
// positive radius, counting exactly the zero-distance twins. Exported so
// the incremental engine reproduces phase-1 lookups bit-for-bit.
const ZeroDistanceRadius = 1e-12

// smallestPositive is the radius used for zero-distance nearest neighbors.
const smallestPositive = ZeroDistanceRadius

package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fuzzydup/internal/nnindex"
)

func TestSQLPartitionMatchesInMemoryTable1(t *testing.T) {
	idx := table1Index()
	for _, prob := range []Problem{
		{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4},
		{Cut: Cut{MaxSize: 5}, Agg: AggAvg, C: 6},
		{Cut: Cut{Diameter: 0.4}, Agg: AggMax, C: 4},
		{Cut: Cut{Diameter: 0.3}, Agg: AggMax2, C: 6},
	} {
		mem, _, err := Solve(idx, prob, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		sqlGroups, _, _, err := SolveSQL(idx, prob, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortGroupsCopy(mem), sortGroupsCopy(sqlGroups)) {
			t.Errorf("prob %+v: SQL and in-memory partitions differ\nmem: %v\nsql: %v",
				prob, mem, sqlGroups)
		}
	}
}

func TestSQLPartitionMatchesInMemoryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		d, _ := clusteredMatrix(rng, []int{2, 3, 1, 4, 2, 1, 2})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		for _, prob := range []Problem{
			{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 5},
			{Cut: Cut{Diameter: 0.2}, Agg: AggMax, C: 5},
		} {
			mem, _, err := Solve(idx, prob, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			sqlGroups, _, _, err := SolveSQL(idx, prob, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sortGroupsCopy(mem), sortGroupsCopy(sqlGroups)) {
				t.Fatalf("trial %d prob %+v: partitions differ\nmem: %v\nsql: %v",
					trial, prob, mem, sqlGroups)
			}
		}
	}
}

func TestSQLPartitionWithExtensions(t *testing.T) {
	// Exclude predicate and minimality must behave identically through SQL.
	pos := []float64{0, 0.01, 0.10, 0.11, 0.20, 0.21}
	idx := matrixIndex(len(pos), func(i, j int) float64 {
		d := pos[i] - pos[j]
		if d < 0 {
			d = -d
		}
		return d
	})
	prob := Problem{Cut: Cut{MaxSize: 6}, Agg: AggMax, C: 3, MinimalCompact: true}
	mem, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqlGroups, _, _, err := SolveSQL(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortGroupsCopy(mem), sortGroupsCopy(sqlGroups)) {
		t.Errorf("minimality differs: mem %v sql %v", mem, sqlGroups)
	}

	probEx := Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4,
		Exclude: func(a, b int) bool { return a+b == 1 }} // forbids (0,1)
	memEx, _, err := Solve(integersIndex(), probEx, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqlEx, _, _, err := SolveSQL(integersIndex(), probEx, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortGroupsCopy(memEx), sortGroupsCopy(sqlEx)) {
		t.Errorf("exclude differs: mem %v sql %v", memEx, sqlEx)
	}
}

func TestSQLNGDistribution(t *testing.T) {
	idx := integersIndex()
	_, _, runner, err := SolveSQL(idx, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := runner.NGDistributionSQL()
	if err != nil {
		t.Fatal(err)
	}
	// Growths from TestComputeNNIntegers: six tuples at ng=2, one at ng=3.
	if hist[2] != 6 || hist[3] != 1 {
		t.Errorf("NG histogram = %v", hist)
	}
}

func TestCSFlags(t *testing.T) {
	// Figure 6's example: tuples 1, 5, 10, 15 with neighbor lists making
	// {1, 5, 10, 15} a compact set of size 4.
	l1 := []int{10, 5, 15, 99}
	l5 := []int{1, 15, 10, 98}
	got := csFlags(1, l1, 5, l5)
	// CS2: {1,10} vs {5,1} -> 0. CS3: {1,10,5} vs {5,1,15} -> 0.
	// CS4: {1,10,5,15} vs {5,1,15,10} -> 1. CS5: includes 99 vs 98 -> 0.
	if got != "0010" {
		t.Errorf("csFlags = %q, want 0010", got)
	}
	// Mutual nearest pair: CS2 = 1.
	if got := csFlags(3, []int{7}, 7, []int{3}); got != "1" {
		t.Errorf("pair flags = %q", got)
	}
	// Empty lists yield no flags.
	if got := csFlags(1, nil, 2, nil); got != "" {
		t.Errorf("empty flags = %q", got)
	}
}

func TestEncodeDecodeIDList(t *testing.T) {
	lists := [][]int{nil, {5}, {3, 17, 42}}
	for _, want := range lists {
		enc := encodeIDList(neighborsFromIDs(want))
		got, err := decodeIDList(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("round trip %v -> %q -> %v", want, enc, got)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("round trip %v -> %v", want, got)
			}
		}
	}
	if _, err := decodeIDList("3,x,5"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestPureSQLCSPairsForK2(t *testing.T) {
	// The paper notes that with the NN-List expanded into one column per
	// neighbor, CSPairs needs only standard SQL. Demonstrate for K=2:
	// CS2 (mutual nearest neighbors) is a plain join predicate.
	idx := integersIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 2}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewSQLRunner()
	db := r.DB()
	if _, err := db.Exec("CREATE TABLE nn_wide (id INT, nn1 INT, ng INT)"); err != nil {
		t.Fatal(err)
	}
	for id, row := range rel.Rows {
		nn1 := -1
		if len(row.NNList) > 0 {
			nn1 = row.NNList[0].ID
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO nn_wide VALUES (%d, %d, %d)", id, nn1, row.NG)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT a.id, b.id FROM nn_wide a, nn_wide b
		WHERE a.id < b.id AND a.nn1 = b.id AND b.nn1 = a.id
		ORDER BY a.id`)
	if err != nil {
		t.Fatal(err)
	}
	// Mutual nearest pairs of the integers example: (0,1), (3,4), (5,6).
	want := [][2]int64{{0, 1}, {3, 4}, {5, 6}}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].Int != w[0] || res.Rows[i][1].Int != w[1] {
			t.Errorf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestBuildCSPairsFastMatchesSelfJoin(t *testing.T) {
	for _, idx := range []*nnindex.Exact{integersIndex(), table1Index()} {
		for _, cut := range []Cut{{MaxSize: 4}, {Diameter: 0.35}} {
			rel, err := ComputeNN(idx, cut, 2, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			slow := NewSQLRunner()
			if err := slow.LoadNNRelation(rel); err != nil {
				t.Fatal(err)
			}
			if err := slow.BuildCSPairs(); err != nil {
				t.Fatal(err)
			}
			fast := NewSQLRunner()
			if err := fast.LoadNNRelation(rel); err != nil {
				t.Fatal(err)
			}
			if err := fast.BuildCSPairsFast(); err != nil {
				t.Fatal(err)
			}
			q := "SELECT id1, id2, ng1, ng2, cs FROM cspairs ORDER BY id1, id2"
			a, err := slow.DB().Exec(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fast.DB().Exec(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("cut %v: %d vs %d rows", cut, len(a.Rows), len(b.Rows))
			}
			for i := range a.Rows {
				if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
					t.Fatalf("cut %v row %d: %v vs %v", cut, i, a.Rows[i], b.Rows[i])
				}
			}
			// The fast path feeds the same partitioning step.
			prob := Problem{Cut: cut, Agg: AggMax, C: 4}
			ga, err := slow.Partition(prob)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := fast.Partition(prob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ga, gb) {
				t.Fatalf("cut %v: partitions differ", cut)
			}
		}
	}
}

func TestPureSQLCSPairsMatchesUDFPath(t *testing.T) {
	// The paper's Size-K remark: with the NN list expanded into K columns,
	// CSPairs needs only standard SQL. The generated CASE expressions must
	// produce exactly the flags the UDF path computes.
	const k = 4
	for _, idx := range []*nnindex.Exact{integersIndex(), table1Index()} {
		rel, err := ComputeNN(idx, Cut{MaxSize: k}, 2, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := NewSQLRunner()
		if err := r.LoadNNRelation(rel); err != nil {
			t.Fatal(err)
		}
		if err := r.BuildCSPairs(); err != nil {
			t.Fatal(err)
		}
		udfRes, err := r.DB().Exec("SELECT id1, id2, cs FROM cspairs ORDER BY id1, id2")
		if err != nil {
			t.Fatal(err)
		}
		udf := make(map[[2]int]string, len(udfRes.Rows))
		for _, row := range udfRes.Rows {
			udf[[2]int{int(row[0].Int), int(row[1].Int)}] = row[2].Str
		}

		if err := r.LoadNNRelationWide(rel, k); err != nil {
			t.Fatal(err)
		}
		if err := r.BuildCSPairsPureSQL(k); err != nil {
			t.Fatal(err)
		}
		wide, err := r.WideFlags(k)
		if err != nil {
			t.Fatal(err)
		}

		// Same pair universe.
		if len(udf) != len(wide) {
			t.Fatalf("pair counts differ: udf %d vs wide %d", len(udf), len(wide))
		}
		bit := func(s string, j int) byte {
			if j-2 < len(s) {
				return s[j-2]
			}
			return '0'
		}
		for pair, uf := range udf {
			wf, ok := wide[pair]
			if !ok {
				t.Fatalf("pair %v missing from wide flags", pair)
			}
			for j := 2; j <= k; j++ {
				if bit(uf, j) != bit(wf, j) {
					t.Fatalf("pair %v CS%d: udf %q vs wide %q", pair, j, uf, wf)
				}
			}
		}
	}
}

func TestSolveSQLValidation(t *testing.T) {
	idx := integersIndex()
	if _, _, _, err := SolveSQL(idx, Problem{Cut: Cut{}, C: 4}, Phase1Options{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

// neighborsFromIDs builds a neighbor list with the given IDs (distances
// irrelevant for the encoding round trip).
func neighborsFromIDs(ids []int) []nnindex.Neighbor {
	out := make([]nnindex.Neighbor, len(ids))
	for i, id := range ids {
		out[i] = nnindex.Neighbor{ID: id}
	}
	return out
}

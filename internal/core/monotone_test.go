package core

import (
	"math/rand"
	"testing"
)

// Monotonicity properties of the DE formulation, complementing the
// Section 3.1 lemmas: relaxing the SN threshold c or the size cut K can
// only coarsen the partition — every detected duplicate pair survives the
// relaxation. This follows from the nested-closure structure: validity of
// a closure at a given size is monotone in c and in K, so the maximal
// valid closure of each tuple can only grow.

func pairsOf(groups [][]int) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				a, b := g[i], g[j]
				if a > b {
					a, b = b, a
				}
				out[[2]int{a, b}] = true
			}
		}
	}
	return out
}

func subset(a, b map[[2]int]bool) bool {
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

func TestPairsMonotoneInC(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		d, _ := clusteredMatrix(rng, []int{2, 3, 4, 2, 1, 2, 3})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		rel, err := ComputeNN(idx, Cut{MaxSize: 5}, 2, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		var prev map[[2]int]bool
		for _, c := range []float64{2, 3, 4, 6, 10} {
			groups, err := Partition(rel, Problem{Cut: Cut{MaxSize: 5}, Agg: AggMax, C: c})
			if err != nil {
				t.Fatal(err)
			}
			cur := pairsOf(groups)
			if prev != nil && !subset(prev, cur) {
				t.Fatalf("trial %d: pairs at smaller c not preserved at c=%g", trial, c)
			}
			prev = cur
		}
	}
}

func TestPairsMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		d, _ := clusteredMatrix(rng, []int{2, 4, 3, 2, 2, 1})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		var prev map[[2]int]bool
		for _, k := range []int{2, 3, 4, 5, 6} {
			groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: k}, Agg: AggMax, C: 6}, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			cur := pairsOf(groups)
			if prev != nil && !subset(prev, cur) {
				t.Fatalf("trial %d: pairs at smaller K not preserved at K=%d", trial, k)
			}
			prev = cur
		}
	}
}

func TestPairsMonotoneInTheta(t *testing.T) {
	// The diameter cut: enlarging θ relaxes the constraint the same way.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		d, _ := clusteredMatrix(rng, []int{2, 3, 2, 4, 1, 2})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		var prev map[[2]int]bool
		for _, theta := range []float64{0.05, 0.1, 0.2, 0.4} {
			groups, _, err := Solve(idx, Problem{Cut: Cut{Diameter: theta}, Agg: AggMax, C: 6}, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			cur := pairsOf(groups)
			if prev != nil && !subset(prev, cur) {
				t.Fatalf("trial %d: pairs at smaller θ not preserved at θ=%g", trial, theta)
			}
			prev = cur
		}
	}
}

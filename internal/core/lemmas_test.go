package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fuzzydup/internal/nnindex"
)

// These tests exercise the formal properties of Section 3.1 (Lemmas 1-4)
// on randomized instances: uniqueness (via label invariance), scale
// invariance, split/merge consistency, and constrained richness.

// randomMatrix builds a random symmetric distance matrix with distinct
// off-diagonal entries in (0, 1).
func randomMatrix(rng *rand.Rand, n int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.05 + 0.9*rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// clusteredMatrix plants groups of the given sizes with small intra-group
// distances and large inter-group distances, returning the matrix and the
// planted partition.
func clusteredMatrix(rng *rand.Rand, sizes []int) ([][]float64, [][]int) {
	n := 0
	for _, s := range sizes {
		n += s
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	var partition [][]int
	id := 0
	group := make([]int, n) // group index per tuple
	for gi, s := range sizes {
		var g []int
		for k := 0; k < s; k++ {
			group[id] = gi
			g = append(g, id)
			id++
		}
		partition = append(partition, g)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if group[i] == group[j] {
				v = 0.01 + 0.02*rng.Float64()
			} else {
				v = 0.5 + 0.4*rng.Float64()
			}
			d[i][j], d[j][i] = v, v
		}
	}
	return d, partition
}

func canon(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func solveMatrix(t *testing.T, d [][]float64, prob Problem) [][]int {
	t.Helper()
	idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
	groups, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// TestLemma1Uniqueness: the DE solution is a function of the distance
// structure alone — relabeling (permuting) the tuples permutes the
// solution, independent of processing order.
func TestLemma1Uniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(10)
		d := randomMatrix(rng, n)
		prob := Problem{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 4}
		base := solveMatrix(t, d, prob)

		perm := rng.Perm(n)
		dp := make([][]float64, n)
		for i := range dp {
			dp[i] = make([]float64, n)
			for j := range dp[i] {
				dp[i][j] = d[perm[i]][perm[j]]
			}
		}
		permuted := solveMatrix(t, dp, prob)
		// Map the permuted solution back to original labels.
		mapped := make([][]int, len(permuted))
		for i, g := range permuted {
			mapped[i] = make([]int, len(g))
			for k, id := range g {
				mapped[i][k] = perm[id]
			}
		}
		if !reflect.DeepEqual(canon(base), canon(mapped)) {
			t.Fatalf("trial %d: relabeling changed the partition\nbase: %v\nmapped: %v",
				trial, canon(base), canon(mapped))
		}
	}
}

// TestLemma2ScaleInvariance: DE_S(K) returns the same partition under
// alpha*d for any alpha > 0. (DE_D is deliberately not scale-invariant:
// the diameter threshold has units.)
func TestLemma2ScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(10)
		d := randomMatrix(rng, n)
		prob := Problem{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 4}
		base := solveMatrix(t, d, prob)
		for _, alpha := range []float64{0.25, 0.5, 2, 7.5} {
			scaled := make([][]float64, n)
			for i := range scaled {
				scaled[i] = make([]float64, n)
				for j := range scaled[i] {
					scaled[i][j] = alpha * d[i][j]
				}
			}
			got := solveMatrix(t, scaled, prob)
			if !reflect.DeepEqual(canon(base), canon(got)) {
				t.Fatalf("trial %d alpha %v: partition changed under scaling", trial, alpha)
			}
		}
	}
}

// TestLemma2DiameterNotScaleInvariant documents the asymmetry: DE_D(θ)
// changes under scaling (the triple of the integers example dissolves when
// distances double past θ).
func TestLemma2DiameterNotScaleInvariant(t *testing.T) {
	idx := integersIndex()
	prob := Problem{Cut: Cut{Diameter: 0.05}, Agg: AggMax, C: 4}
	base, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 2, 4, 20, 22, 30, 32}
	scaledIdx := matrixIndex(len(vals), func(i, j int) float64 {
		d := vals[i] - vals[j]
		if d < 0 {
			d = -d
		}
		return 3 * d / 100 // alpha = 3
	})
	scaled, _, err := Solve(scaledIdx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(canon(base), canon(scaled)) {
		t.Error("DE_D unexpectedly scale-invariant on the integers example")
	}
}

// TestLemma3SplitMergeConsistency: under a P-conscious transformation
// (shrink within-group distances, expand cross-group distances), each new
// group is a subset of an old group or a union of old groups.
func TestLemma3SplitMergeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		sizes := []int{2, 3, 2, 1, 4, 2, 1, 1}
		d, _ := clusteredMatrix(rng, sizes)
		n := len(d)
		for _, cut := range []Cut{{MaxSize: 4}, {Diameter: 0.2}} {
			prob := Problem{Cut: cut, Agg: AggMax, C: 5}
			base := solveMatrix(t, d, prob)

			// Build the P-conscious transformation from the *solution* P.
			groupOf := make([]int, n)
			for gi, g := range base {
				for _, id := range g {
					groupOf[id] = gi
				}
			}
			dp := make([][]float64, n)
			for i := range dp {
				dp[i] = make([]float64, n)
				for j := range dp[i] {
					if i == j {
						continue
					}
					if groupOf[i] == groupOf[j] {
						dp[i][j] = d[i][j] * 0.8
					} else {
						dp[i][j] = d[i][j] * 1.2
					}
				}
			}
			got := solveMatrix(t, dp, prob)

			// Verify: each new group is ⊆ an old group or a union of old
			// groups.
			for _, g := range got {
				touched := map[int]bool{}
				for _, id := range g {
					touched[gi(groupOf, id)] = true
				}
				if len(touched) == 1 {
					continue // subset of (or equal to) one old group
				}
				// Union case: every touched old group must be fully inside g.
				inG := map[int]bool{}
				for _, id := range g {
					inG[id] = true
				}
				for oldGi := range touched {
					for _, id := range base[oldGi] {
						if !inG[id] {
							t.Fatalf("trial %d cut %v: group %v straddles old group %v",
								trial, cut, g, base[oldGi])
						}
					}
				}
			}
		}
	}
}

func gi(groupOf []int, id int) int { return groupOf[id] }

// TestLemma4ConstrainedRichness: for any target partition into small
// groups, a distance function exists for which DE_S returns exactly that
// partition — verified constructively on random targets.
func TestLemma4ConstrainedRichness(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 25; trial++ {
		// Random target: group sizes in 1..4 summing to ~20 tuples.
		var sizes []int
		total := 0
		for total < 20 {
			s := 1 + rng.Intn(4)
			sizes = append(sizes, s)
			total += s
		}
		d, target := clusteredMatrix(rng, sizes)
		maxSize := 0
		for _, s := range sizes {
			if s > maxSize {
				maxSize = s
			}
		}
		prob := Problem{Cut: Cut{MaxSize: max(maxSize, 2)}, Agg: AggMax, C: float64(maxSize) + 1}
		got := solveMatrix(t, d, prob)
		if !reflect.DeepEqual(canon(got), canon(target)) {
			t.Fatalf("trial %d: target partition not realized\nwant %v\ngot  %v",
				trial, canon(target), canon(got))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestCompactSetsNestedFamily: closures of members of a compact set are
// consistent — the structural fact the partitioning step's transitivity
// argument rests on.
func TestCompactSetsNestedFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		d, _ := clusteredMatrix(rng, []int{3, 2, 4, 1, 2})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		rel, err := ComputeNN(idx, Cut{MaxSize: 5}, 2, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		for v := range rel.Rows {
			for j := 2; j <= 5 && j-1 <= len(rel.Rows[v].NNList); j++ {
				if !IsCompactSet(rel.Rows, v, j) {
					continue
				}
				// Every member w of the closure must agree: closure(w, j)
				// is the same set and compact.
				for _, nb := range rel.Rows[v].NNList[:j-1] {
					if !IsCompactSet(rel.Rows, nb.ID, j) {
						t.Fatalf("trial %d: member %d of compact closure(%d,%d) disagrees",
							trial, nb.ID, v, j)
					}
				}
			}
		}
	}
}

// TestSolveMatchesManualPhases: Solve == ComputeNN + Partition.
func TestSolveMatchesManualPhases(t *testing.T) {
	idx := table1Index()
	prob := Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}
	got, rel, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := ComputeNN(idx, prob.Cut, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := Partition(rel2, prob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, manual) {
		t.Error("Solve and manual phases disagree")
	}
	if !reflect.DeepEqual(rel.Rows, rel2.Rows) {
		t.Error("NN relations disagree")
	}
}

var _ = nnindex.Neighbor{} // keep the import for helper types

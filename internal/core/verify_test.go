package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestVerifyAcceptsSolverOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		d, _ := clusteredMatrix(rng, []int{2, 3, 4, 1, 2, 2})
		idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
		for _, prob := range []Problem{
			{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 5},
			{Cut: Cut{Diameter: 0.2}, Agg: AggAvg, C: 5},
			{Cut: Cut{MaxSize: 3, Diameter: 0.2}, Agg: AggMax2, C: 5},
		} {
			groups, _, err := Solve(idx, prob, Phase1Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyPartition(idx, groups, prob); err != nil {
				t.Fatalf("trial %d prob %+v: solver output rejected: %v", trial, prob, err)
			}
		}
	}
}

func TestVerifyAcceptsTable1(t *testing.T) {
	idx := table1Index()
	prob := Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}
	groups, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPartition(idx, groups, prob); err != nil {
		t.Fatalf("table1 output rejected: %v", err)
	}
}

func TestVerifyRejectsViolations(t *testing.T) {
	idx := integersIndex() // values 1,2,4,20,22,30,32
	prob := Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}

	cases := []struct {
		name   string
		groups [][]int
		substr string
	}{
		{"missing tuple", [][]int{{0, 1, 2}, {3, 4}, {5}}, "covered"},
		{"double assignment", [][]int{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {0}}, "two groups"},
		{"out of range", [][]int{{0, 99}, {1}, {2}, {3}, {4}, {5}, {6}}, "out of range"},
		{"not compact", [][]int{{0, 1, 2}, {3, 5}, {4, 6}}, "not compact"},
		{"size cut", [][]int{{0, 1, 2, 3}, {4}, {5, 6}}, ""}, // 4 > K=3; message mentions cut
	}
	for _, tc := range cases {
		err := VerifyPartition(idx, tc.groups, prob)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.substr != "" && !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.substr)
		}
	}
}

func TestVerifyRejectsSNViolation(t *testing.T) {
	// Force a dense pair into a group: tuples 10 and 11 from the Table 1
	// "Are You Ready" series are mutually close but their neighborhoods
	// are dense (ng >= 4); grouping them violates SN at c=4... but they
	// must also be mutual NNs for compactness to pass first. Build a
	// bespoke instance instead: a tight pair inside a crowd.
	pos := []float64{0, 0.01, 0.05, 0.055, 0.06, 0.9}
	idx := matrixIndex(len(pos), func(i, j int) float64 {
		d := pos[i] - pos[j]
		if d < 0 {
			d = -d
		}
		return d
	})
	// {2,3}: mutual NNs (d=.005), but growth spheres catch 4 and each
	// other -> ng = 3 for both; c=3 rejects them.
	prob := Problem{Cut: Cut{MaxSize: 2}, Agg: AggMax, C: 3}
	groups := [][]int{{0, 1}, {2, 3}, {4}, {5}}
	err := VerifyPartition(idx, groups, prob)
	if err == nil || !strings.Contains(err.Error(), "SN") {
		t.Errorf("SN violation not caught: %v", err)
	}
}

func TestVerifyRejectsDiameterViolation(t *testing.T) {
	idx := integersIndex()
	prob := Problem{Cut: Cut{Diameter: 0.025}, Agg: AggMax, C: 4}
	// {0,1,2} has diameter 0.03 >= 0.025.
	groups := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	err := VerifyPartition(idx, groups, prob)
	if err == nil || !strings.Contains(err.Error(), "diameter") {
		t.Errorf("diameter violation not caught: %v", err)
	}
}

func TestVerifyRejectsExcludeViolation(t *testing.T) {
	idx := integersIndex()
	prob := Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4,
		Exclude: func(a, b int) bool { return a == 0 && b == 1 }}
	groups := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	err := VerifyPartition(idx, groups, prob)
	if err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Errorf("exclude violation not caught: %v", err)
	}
}

func TestVerifyInvalidProblem(t *testing.T) {
	idx := integersIndex()
	if err := VerifyPartition(idx, nil, Problem{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

package core

import (
	"fmt"
	"sort"
)

// EstimateOptions tunes the SN-threshold heuristic of Section 4.3. The
// zero value selects the paper's settings.
type EstimateOptions struct {
	// Window is the half-width of the percentile interval searched around
	// f (the paper suggests 0.05). Zero selects 0.05.
	Window float64
	// SpikeMass is the probability mass at a single NG value that counts
	// as a "spike" in the cumulative distribution (the paper uses 0.1).
	// Zero selects 0.1.
	SpikeMass float64
}

func (o EstimateOptions) withDefaults() EstimateOptions {
	if o.Window == 0 {
		o.Window = 0.05
	}
	if o.SpikeMass == 0 {
		o.SpikeMass = 0.1
	}
	return o
}

// EstimateSNThreshold implements the Section 4.3 heuristic for setting the
// sparse-neighborhood threshold c from an easily estimated quantity: the
// fraction f of duplicate tuples in the relation.
//
// Intuition: duplicate tuples have small neighborhood growths, unique
// tuples larger ones, so in the cumulative NG distribution D the
// f-percentile separates them. To be robust against f being only an
// estimate, the returned threshold is the least NG value x in the
// percentile window [f-w, f+w] at which D grows sharply (a "spike" — at
// least SpikeMass of all tuples have NG exactly x); the spike marks where
// the unique tuples' growths pile up, and c = x excludes them (groups
// require ng < c). When no spike exists in the window, the (f+w)-percentile
// is returned.
//
// ngs is the NG column of the phase-1 relation (re-used, as the paper
// notes, since c is not needed until phase 2). f must lie in (0, 1).
func EstimateSNThreshold(ngs []int, f float64, opts EstimateOptions) (float64, error) {
	if len(ngs) == 0 {
		return 0, fmt.Errorf("core: estimate needs a non-empty NG column")
	}
	if f <= 0 || f >= 1 {
		return 0, fmt.Errorf("core: duplicate fraction f = %g must be in (0, 1)", f)
	}
	opts = opts.withDefaults()
	sorted := append([]int(nil), ngs...)
	sort.Ints(sorted)
	n := len(sorted)

	// Distinct NG values with the cumulative fraction strictly below the
	// value ("below" = D(value-1)) and the point mass at the value.
	type level struct {
		value int
		below float64 // fraction of tuples with NG < value
		cum   float64 // D(value): fraction of tuples with NG <= value
		mass  float64 // fraction of tuples with NG == value
	}
	var levels []level
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		levels = append(levels, level{
			value: sorted[i],
			below: float64(i) / float64(n),
			cum:   float64(j) / float64(n),
			mass:  float64(j-i) / float64(n),
		})
		i = j
	}

	// Groups require ng < c, so the duplicates (the f fraction with the
	// smallest growths) must sit strictly below c. A spike at value x
	// whose below-fraction is around f therefore marks where the unique
	// tuples' growths pile up, and c = x excludes them while keeping the
	// duplicates. Take the least such spike in the percentile window.
	lo, hi := f-opts.Window, f+opts.Window
	for _, l := range levels {
		if l.below >= lo && l.below <= hi && l.mass > opts.SpikeMass {
			return float64(l.value), nil
		}
	}
	// No spike: fall back to the (f+w)-percentile value plus one — the
	// least c such that at least f+w of the tuples have ng < c.
	target := hi
	if target > 1 {
		target = 1
	}
	for _, l := range levels {
		if l.cum >= target {
			return float64(l.value) + 1, nil
		}
	}
	return float64(levels[len(levels)-1].value) + 1, nil
}

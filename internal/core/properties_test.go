package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
)

// Metamorphic properties of the solver at the string-metric level: the
// lemma tests work on raw distance matrices, while these run the real
// pipeline — keys, a distance.Metric, an exact index — and check
// transformations whose effect on the answer is known exactly: scaling
// the metric, unioning far-separated corpora, and permuting the phase-1
// processing order. The blocked pipeline's equivalence argument leans on
// the same invariances, so they are pinned down here independently.

// propMetric is the scaled absolute difference of decimal keys — cheap,
// deterministic, and a true metric.
var propMetric = distance.Func{MetricName: "absdiff", F: func(a, b string) float64 {
	x, _ := strconv.Atoi(a)
	y, _ := strconv.Atoi(b)
	if x < y {
		x, y = y, x
	}
	return float64(x-y) / 1000000
}}

// propKeys builds a corpus of duplicate clusters amid uniform noise over
// [lo, lo+span), as zero-padded decimals.
func propKeys(rng *rand.Rand, n, lo, span int) []string {
	keys := make([]string, 0, n)
	for len(keys) < n {
		base := lo + rng.Intn(span)
		if rng.Intn(3) == 0 {
			k := 2 + rng.Intn(3)
			for i := 0; i < k && len(keys) < n; i++ {
				keys = append(keys, fmt.Sprintf("%06d", base+rng.Intn(3)))
			}
		} else {
			keys = append(keys, fmt.Sprintf("%06d", base))
		}
	}
	return keys
}

func solveKeys(t *testing.T, keys []string, m distance.Metric, prob Problem, opts Phase1Options) [][]int {
	t.Helper()
	groups, _, err := Solve(nnindex.NewExact(keys, m), prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// propProblems spans the three cut families. θ is chosen well above the
// planted cluster spread (≤ 2e-6) and below the typical noise gap.
func propProblems() []Problem {
	return []Problem{
		{Cut: Cut{MaxSize: 3}, C: 3},
		{Cut: Cut{MaxSize: 4}, C: 4, MinimalCompact: true},
		{Cut: Cut{Diameter: 1e-4}, C: 3},
		{Cut: Cut{MaxSize: 4, Diameter: 1e-4}, C: 3},
	}
}

// TestPropertyScaleInvariance: scaling every distance by α > 0 leaves a
// DE_S(K) partition unchanged, and maps a DE_D(θ) / combined partition to
// the one at threshold α·θ. The α values are powers of two, so α·d and
// α·θ are exact in float64 and the (distance, ID) tie-break order is
// bit-for-bit preserved.
func TestPropertyScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := propKeys(rng, 160, 0, 1000000)
	for _, alpha := range []float64{0.5, 0.25, 2} {
		scaled := distance.Scaled{M: propMetric, Alpha: alpha}
		for _, prob := range propProblems() {
			want := solveKeys(t, keys, propMetric, prob, Phase1Options{})
			sprob := prob
			sprob.Cut.Diameter *= alpha // zero stays zero for pure size cuts
			got := solveKeys(t, keys, scaled, sprob, Phase1Options{})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("alpha %g cut %+v: scaled solve diverges", alpha, prob.Cut)
			}
		}
	}
}

// TestPropertySplitMergeUnion: concatenating two corpora whose cross
// distances dwarf every within-corpus structure solves to exactly the
// union of the individual solutions (the second one's IDs shifted). This
// is the degenerate special case of blocking — two blocks no neighborhood
// crosses — solved here by the monolithic path alone.
func TestPropertySplitMergeUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Both halves live in narrow bands half the key space apart: every
	// cross distance is ≥ ~0.45, far beyond θ and every growth sphere.
	a := propKeys(rng, 80, 0, 50000)
	b := propKeys(rng, 70, 500000, 50000)
	union := append(append([]string{}, a...), b...)
	for _, prob := range propProblems() {
		ga := solveKeys(t, a, propMetric, prob, Phase1Options{})
		gb := solveKeys(t, b, propMetric, prob, Phase1Options{})
		want := append([][]int{}, ga...)
		for _, g := range gb {
			shifted := make([]int, len(g))
			for i, v := range g {
				shifted[i] = v + len(a)
			}
			want = append(want, shifted)
		}
		got := solveKeys(t, union, propMetric, prob, Phase1Options{})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cut %+v: union solve is not the disjoint union", prob.Cut)
		}
	}
}

// TestPropertyUniqueness: the solution is a function of the instance
// alone — phase-1 processing order, lookup parallelism, and repetition
// cannot change it.
func TestPropertyUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	keys := propKeys(rng, 150, 0, 1000000)
	variants := []Phase1Options{
		{},
		{Order: OrderSequential},
		{Order: OrderRandom, Seed: 99},
		{Parallel: 8},
		{Order: OrderSequential, Parallel: 4},
	}
	for _, prob := range propProblems() {
		want := solveKeys(t, keys, propMetric, prob, Phase1Options{})
		for vi, opts := range variants {
			if got := solveKeys(t, keys, propMetric, prob, opts); !reflect.DeepEqual(got, want) {
				t.Errorf("cut %+v variant %d: solution depends on processing order", prob.Cut, vi)
			}
		}
		// Re-solving the identical instance is bit-for-bit stable.
		if again := solveKeys(t, keys, propMetric, prob, Phase1Options{}); !reflect.DeepEqual(again, want) {
			t.Errorf("cut %+v: repeated solve diverged", prob.Cut)
		}
	}
}

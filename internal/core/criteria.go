// Package core implements the paper's contribution: the compact-set (CS)
// and sparse-neighborhood (SN) criteria, the duplicate-elimination problem
// formulations DE_S(K) and DE_D(θ), and the scalable two-phase algorithm
// that solves them (nearest-neighbor computation in breadth-first lookup
// order, then partitioning via compact-set pair equalities).
//
// Terminology follows the paper (Sections 2-4):
//
//   - nn(v): distance from tuple v to its nearest neighbor.
//   - N(v): the neighborhood of v, a sphere of radius p·nn(v) (p = 2).
//   - ng(v): neighborhood growth, the number of tuples inside N(v);
//     by the paper's formula ng(v) = |{u : d(u,v) < p·nn(v)}| the tuple
//     itself counts, so ng(v) >= 2 whenever the relation has >= 2 tuples.
//   - compact set: a set S where every member is closer to every other
//     member than to any tuple outside S (mutual nearest neighbors).
//   - SN(AGG, c) group: a set S with AGG({ng(v) : v in S}) < c, or |S| = 1.
//
// The i-neighbor set of v used by the CSi equalities is the closed set
// {v} ∪ {first i-1 nearest neighbors of v}; with this reading CS2 is
// exactly "mutual nearest neighbors" and the paper's Figure 6 example
// reproduces verbatim (see DESIGN.md, "Interpretation choices").
package core

import (
	"fmt"
	"sort"

	"fuzzydup/internal/nnindex"
)

// DefaultP is the growth-sphere factor p; the paper fixes p = 2.
const DefaultP = 2.0

// Agg selects the aggregation function of the SN criterion.
type Agg int

// Aggregation functions evaluated in the paper (Figure 7).
const (
	// AggMax requires every member's neighborhood growth below c.
	AggMax Agg = iota
	// AggAvg requires the mean neighborhood growth below c.
	AggAvg
	// AggMax2 requires the second-largest neighborhood growth below c,
	// tolerating one dense member.
	AggMax2
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggMax2:
		return "max2"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// Apply aggregates the neighborhood growths of a group's members.
// It panics on an empty slice; the SN criterion never aggregates an empty
// group (singletons are SN by definition).
func (a Agg) Apply(ngs []int) float64 {
	if len(ngs) == 0 {
		panic("core: aggregation over empty group")
	}
	switch a {
	case AggMax:
		m := ngs[0]
		for _, v := range ngs[1:] {
			if v > m {
				m = v
			}
		}
		return float64(m)
	case AggAvg:
		s := 0
		for _, v := range ngs {
			s += v
		}
		return float64(s) / float64(len(ngs))
	case AggMax2:
		if len(ngs) == 1 {
			return float64(ngs[0])
		}
		first, second := ngs[0], ngs[1]
		if second > first {
			first, second = second, first
		}
		for _, v := range ngs[2:] {
			switch {
			case v > first:
				first, second = v, first
			case v > second:
				second = v
			}
		}
		return float64(second)
	default:
		panic(fmt.Sprintf("core: unknown aggregation %d", int(a)))
	}
}

// Cut is the paper's Section 3 "cut" specification that makes the DE
// problem well-behaved: the size specification K of DE_S, the diameter
// specification θ of DE_D, or — as Section 3 notes is possible — both
// together (groups of at most K tuples whose diameter stays below θ).
type Cut struct {
	// MaxSize bounds group sizes: |G| <= MaxSize. Zero means unset.
	MaxSize int
	// Diameter bounds the maximum pairwise distance within a group:
	// Diameter(G) < Diameter (realized by restricting neighbor lists to
	// radius Diameter). Zero means unset.
	Diameter float64
}

// Validate reports whether the cut selects at least one specification
// with sensible values.
func (c Cut) Validate() error {
	sizeSet := c.MaxSize != 0
	diamSet := c.Diameter != 0
	switch {
	case !sizeSet && !diamSet:
		return fmt.Errorf("core: cut sets neither size nor diameter")
	case sizeSet && c.MaxSize < 2:
		return fmt.Errorf("core: size cut K = %d must be >= 2", c.MaxSize)
	case diamSet && (c.Diameter < 0 || c.Diameter > 1):
		return fmt.Errorf("core: diameter cut θ = %g must be in (0, 1]", c.Diameter)
	}
	return nil
}

// IsSize reports whether neighbor lists are bounded by count alone (a pure
// DE_S(K) cut). When a diameter is set — alone or combined with a size —
// phase 1 fetches range lists instead, and the size bound (if any) caps
// the group size during partitioning.
func (c Cut) IsSize() bool { return c.MaxSize != 0 && c.Diameter == 0 }

// String implements fmt.Stringer.
func (c Cut) String() string {
	switch {
	case c.MaxSize != 0 && c.Diameter != 0:
		return fmt.Sprintf("DE_SD(%d, %.3g)", c.MaxSize, c.Diameter)
	case c.MaxSize != 0:
		return fmt.Sprintf("DE_S(%d)", c.MaxSize)
	default:
		return fmt.Sprintf("DE_D(%.3g)", c.Diameter)
	}
}

// Problem is a full instantiation of the DE problem within the paper's
// framework: the cut, the SN aggregation and threshold, the growth factor,
// and the optional extensions of Section 4.4.
type Problem struct {
	// Cut selects DE_S(K) or DE_D(θ).
	Cut Cut
	// Agg is the SN aggregation function (default AggMax).
	Agg Agg
	// C is the sparse-neighborhood threshold c (> 1). Groups require
	// Agg({ng}) < C.
	C float64
	// P is the growth-sphere factor; zero selects DefaultP (= 2).
	P float64
	// MinimalCompact, when set, applies the Section 4.4.2 post-processing:
	// groups that are unions of disjoint non-trivial compact sets are split
	// into minimal compact sets.
	MinimalCompact bool
	// Exclude is the Section 4.4.1 constraining predicate: when non-nil
	// and Exclude(a, b) is true, tuples a and b may not share a group.
	Exclude func(a, b int) bool
}

// Validate checks the problem parameters.
func (p Problem) Validate() error {
	if err := p.Cut.Validate(); err != nil {
		return err
	}
	if p.C <= 1 {
		return fmt.Errorf("core: SN threshold c = %g must exceed 1", p.C)
	}
	if p.P < 0 {
		return fmt.Errorf("core: growth factor p = %g must be positive", p.P)
	}
	return nil
}

func (p Problem) growthFactor() float64 {
	if p.P == 0 {
		return DefaultP
	}
	return p.P
}

// NNRow is one row of the phase-1 output relation NN_Reln(ID, NN-List, NG):
// a tuple's ordered neighbor list and its neighborhood growth.
type NNRow struct {
	// NNList holds the K nearest neighbors (size cut) or all neighbors
	// within θ (diameter cut), ordered by ascending (distance, ID).
	NNList []nnindex.Neighbor
	// NG is the neighborhood growth ng(v), self-inclusive per the paper's
	// formula.
	NG int
}

// NNRelation is the materialized phase-1 output for a relation; row i
// describes tuple i.
type NNRelation struct {
	Rows []NNRow
	// Cut records which specification the lists were computed for.
	Cut Cut
	// P records the growth factor used for the NG column.
	P float64
}

// ReverseNN returns the reverse nearest-neighbor adjacency of the
// relation: out[u] lists, in ascending order, every tuple v whose NN-List
// references u. This is the bookkeeping a local repair needs after a data
// change — only tuples that reference a changed tuple (or that the changed
// tuple newly reaches) can see their phase-2 decisions move, which is what
// the paper's split/merge consistency makes principled.
func (r *NNRelation) ReverseNN() [][]int {
	out := make([][]int, len(r.Rows))
	for v, row := range r.Rows {
		for _, nb := range row.NNList {
			out[nb.ID] = append(out[nb.ID], v)
		}
	}
	for _, refs := range out {
		sort.Ints(refs)
	}
	return out
}

// NGValues returns the NG column, the input to the SN-threshold estimator.
func (r *NNRelation) NGValues() []int {
	ngs := make([]int, len(r.Rows))
	for i, row := range r.Rows {
		ngs[i] = row.NG
	}
	return ngs
}

// TruncateSize derives a DE_S(k) NN relation from one computed at a
// larger K by truncating each neighbor prefix — valid because top-K lists
// are prefixes of top-K' lists for K <= K', and NG does not depend on the
// cut. It panics if the source relation is narrower than k.
func (r *NNRelation) TruncateSize(k int) *NNRelation {
	if !r.Cut.IsSize() || r.Cut.MaxSize < k {
		panic(fmt.Sprintf("core: cannot truncate %v to DE_S(%d)", r.Cut, k))
	}
	out := &NNRelation{Rows: make([]NNRow, len(r.Rows)), Cut: Cut{MaxSize: k}, P: r.P}
	for i, row := range r.Rows {
		list := row.NNList
		if len(list) > k {
			list = list[:k]
		}
		out.Rows[i] = NNRow{NNList: list, NG: row.NG}
	}
	return out
}

// TruncateDiameter derives a DE_D(theta) NN relation from one computed at
// a larger θ by cutting each list at the first distance >= theta. It
// panics if the source relation is narrower than theta.
func (r *NNRelation) TruncateDiameter(theta float64) *NNRelation {
	if r.Cut.Diameter == 0 || r.Cut.Diameter < theta {
		panic(fmt.Sprintf("core: cannot truncate %v to DE_D(%g)", r.Cut, theta))
	}
	out := &NNRelation{Rows: make([]NNRow, len(r.Rows)), Cut: Cut{Diameter: theta}, P: r.P}
	for i, row := range r.Rows {
		cut := len(row.NNList)
		for j, n := range row.NNList {
			if n.Dist >= theta {
				cut = j
				break
			}
		}
		out.Rows[i] = NNRow{NNList: row.NNList[:cut], NG: row.NG}
	}
	return out
}

// closureEqual reports CSj(v, u): whether the closed j-neighbor sets
// {v} ∪ top_{j-1}(v) and {u} ∪ top_{j-1}(u) coincide. It returns false
// when either list is too short to contain j-1 neighbors.
func closureEqual(rows []NNRow, v, u, j int) bool {
	if j < 2 || len(rows[v].NNList) < j-1 || len(rows[u].NNList) < j-1 {
		return false
	}
	set := make(map[int]struct{}, j)
	set[v] = struct{}{}
	for _, n := range rows[v].NNList[:j-1] {
		set[n.ID] = struct{}{}
	}
	if len(set) != j {
		return false
	}
	if _, ok := set[u]; !ok {
		return false
	}
	count := 0
	if _, ok := set[u]; ok {
		count = 1 // u itself
	}
	for _, n := range rows[u].NNList[:j-1] {
		if _, ok := set[n.ID]; !ok {
			return false
		}
		count++
	}
	return count == j
}

// IsCompactSet reports whether the candidate group consisting of v and its
// first j-1 nearest neighbors is a compact set, judged purely from the
// phase-1 neighbor lists: every member's closed j-neighbor set must equal
// v's. Set equality is transitive, so pairwise equality against v suffices
// (the paper's partitioning-step observation).
func IsCompactSet(rows []NNRow, v, j int) bool {
	if j < 2 || len(rows[v].NNList) < j-1 {
		return false
	}
	for _, n := range rows[v].NNList[:j-1] {
		if !closureEqual(rows, v, n.ID, j) {
			return false
		}
	}
	return true
}

// SNHolds reports whether the group satisfies SN(agg, c) given the NG
// column: singletons pass by definition; otherwise the aggregate of member
// growths must be strictly below c.
func SNHolds(rows []NNRow, group []int, agg Agg, c float64) bool {
	if len(group) <= 1 {
		return true
	}
	ngs := make([]int, len(group))
	for i, id := range group {
		ngs[i] = rows[id].NG
	}
	return agg.Apply(ngs) < c
}

// sortGroups orders a partition canonically: members ascending within each
// group, groups by smallest member.
func sortGroups(groups [][]int) [][]int {
	for _, g := range groups {
		sort.Ints(g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

package core

import (
	"fmt"

	"fuzzydup/internal/nnindex"
)

// PairExplanation breaks down how the CS/SN criteria see a candidate
// pair — the interpretability dividend of structural criteria over opaque
// scores. Ranks are 1-based positions in each tuple's neighbor list
// (0 = beyond the first k neighbors).
type PairExplanation struct {
	// Distance is the metric distance between the two tuples.
	Distance float64
	// RankAB is b's rank among a's nearest neighbors; RankBA the reverse.
	RankAB, RankBA int
	// MutualNN reports whether each is the other's first neighbor — the
	// CS2 condition, the minimum bar for ever sharing a group.
	MutualNN bool
	// NGA and NGB are the tuples' neighborhood growths (self-inclusive).
	NGA, NGB int
	// MaxNG is the max aggregation of the two growths; the pair passes
	// SN(max, c) iff MaxNG < c.
	MaxNG int
}

// ExplainPair evaluates the pair diagnostics against the index, looking
// at the first k neighbors of each tuple and growth factor p (0 selects
// the paper's 2).
func ExplainPair(idx nnindex.Index, a, b, k int, p float64) PairExplanation {
	if p == 0 {
		p = DefaultP
	}
	rank := func(of, want int) int {
		for i, n := range idx.TopK(of, k) {
			if n.ID == want {
				return i + 1
			}
		}
		return 0
	}
	growth := func(v int) int {
		nn := idx.TopK(v, 1)
		if len(nn) == 0 {
			return 1
		}
		radius := p * nn[0].Dist
		if nn[0].Dist == 0 {
			radius = smallestPositive
		}
		return idx.GrowthCount(v, radius) + 1
	}
	e := PairExplanation{
		RankAB: rank(a, b),
		RankBA: rank(b, a),
		NGA:    growth(a),
		NGB:    growth(b),
	}
	// Distance: read it off a's neighbor list when present; otherwise ask
	// an index that can answer directly (Exact). Callers holding the
	// metric (the public Deduper does) overwrite it regardless.
	for _, n := range idx.TopK(a, k) {
		if n.ID == b {
			e.Distance = n.Dist
		}
	}
	if e.Distance == 0 && a != b {
		if ex, ok := idx.(*nnindex.Exact); ok {
			e.Distance = ex.Distance(a, b)
		}
	}
	e.MutualNN = e.RankAB == 1 && e.RankBA == 1
	e.MaxNG = e.NGA
	if e.NGB > e.MaxNG {
		e.MaxNG = e.NGB
	}
	return e
}

// VerifyPartition independently checks that a partition is a valid
// solution to the DE problem: it covers every tuple exactly once and each
// group satisfies the compact-set criterion, the SN criterion, and the
// cut specification, all evaluated directly against the index (not
// against phase-1 artifacts). It returns nil for a valid partition and a
// descriptive error for the first violation found.
//
// This is the executable form of the Section 4.2 correctness argument,
// usable as a post-hoc audit: any partition produced by Partition or the
// SQL runner must pass, whatever index produced the neighbor lists.
func VerifyPartition(idx nnindex.Index, groups [][]int, prob Problem) error {
	if err := prob.Validate(); err != nil {
		return err
	}
	p := prob.growthFactor()
	n := idx.Len()
	seen := make([]bool, n)
	total := 0
	for _, g := range groups {
		for _, id := range g {
			if id < 0 || id >= n {
				return fmt.Errorf("core: verify: tuple %d out of range", id)
			}
			if seen[id] {
				return fmt.Errorf("core: verify: tuple %d in two groups", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("core: verify: %d of %d tuples covered", total, n)
	}

	groupOf := make([]int, n)
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi
		}
	}

	for gi, g := range groups {
		if len(g) < 2 {
			continue
		}
		if prob.Cut.MaxSize > 0 && len(g) > prob.Cut.MaxSize {
			return fmt.Errorf("core: verify: group %d has %d members, cut allows %d", gi, len(g), prob.Cut.MaxSize)
		}
		// Compactness: every member's closest len(g)-1 tuples must be
		// exactly the other members — equivalently, the farthest member
		// is closer than the nearest outsider.
		for _, v := range g {
			ns := idx.TopK(v, len(g))
			if len(ns) < len(g)-1 {
				return fmt.Errorf("core: verify: tuple %d has too few neighbors", v)
			}
			for i := 0; i < len(g)-1; i++ {
				if groupOf[ns[i].ID] != gi {
					return fmt.Errorf("core: verify: group %d is not compact: tuple %d's neighbor %d is outside",
						gi, v, ns[i].ID)
				}
			}
			// Diameter check rides on the same neighbor list.
			if prob.Cut.Diameter > 0 && ns[len(g)-2].Dist >= prob.Cut.Diameter {
				return fmt.Errorf("core: verify: group %d exceeds diameter %g at tuple %d",
					gi, prob.Cut.Diameter, v)
			}
		}
		// SN criterion from first principles.
		ngs := make([]int, len(g))
		for i, v := range g {
			nn := idx.TopK(v, 1)
			if len(nn) == 0 {
				return fmt.Errorf("core: verify: tuple %d has no neighbors", v)
			}
			radius := p * nn[0].Dist
			if nn[0].Dist == 0 {
				radius = smallestPositive
			}
			ngs[i] = idx.GrowthCount(v, radius) + 1
		}
		if agg := prob.Agg.Apply(ngs); agg >= prob.C {
			return fmt.Errorf("core: verify: group %d violates SN: %s(%v) = %g >= c = %g",
				gi, prob.Agg, ngs, agg, prob.C)
		}
		if prob.Exclude != nil && violatesExclude(g, prob.Exclude) {
			return fmt.Errorf("core: verify: group %d violates the constraining predicate", gi)
		}
	}
	return nil
}

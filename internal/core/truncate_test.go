package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestTruncateSize(t *testing.T) {
	idx := integersIndex()
	wide, err := ComputeNN(idx, Cut{MaxSize: 5}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 5} {
		direct, err := ComputeNN(idx, Cut{MaxSize: k}, 2, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		trunc := wide.TruncateSize(k)
		if !reflect.DeepEqual(direct.Rows, trunc.Rows) {
			t.Errorf("K=%d: truncation differs from direct computation", k)
		}
		if trunc.Cut.MaxSize != k {
			t.Errorf("K=%d: cut = %v", k, trunc.Cut)
		}
	}
}

func TestTruncateDiameter(t *testing.T) {
	idx := integersIndex()
	wide, err := ComputeNN(idx, Cut{Diameter: 0.5}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.02, 0.05, 0.3, 0.5} {
		direct, err := ComputeNN(idx, Cut{Diameter: theta}, 2, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		trunc := wide.TruncateDiameter(theta)
		if !reflect.DeepEqual(direct.Rows, trunc.Rows) {
			t.Errorf("θ=%g: truncation differs from direct computation", theta)
		}
	}
}

func TestTruncatePanics(t *testing.T) {
	idx := integersIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("widen size", func() { rel.TruncateSize(5) })
	mustPanic("size from diameter", func() {
		relD, _ := ComputeNN(idx, Cut{Diameter: 0.3}, 2, Phase1Options{})
		relD.TruncateSize(2)
	})
	mustPanic("widen diameter", func() {
		relD, _ := ComputeNN(idx, Cut{Diameter: 0.3}, 2, Phase1Options{})
		relD.TruncateDiameter(0.4)
	})
	mustPanic("diameter from size", func() { rel.TruncateDiameter(0.1) })
}

func TestExplainPair(t *testing.T) {
	idx := integersIndex() // values 1,2,4,20,22,30,32
	// 0 and 1 (values 1, 2): mutual NNs, sparse neighborhoods.
	e := ExplainPair(idx, 0, 1, 3, 0)
	if !e.MutualNN || e.RankAB != 1 || e.RankBA != 1 {
		t.Errorf("mutual pair = %+v", e)
	}
	if e.Distance != 0.01 {
		t.Errorf("distance = %v", e.Distance)
	}
	if e.NGA != 2 || e.NGB != 2 || e.MaxNG != 2 {
		t.Errorf("growths = %+v", e)
	}
	// 1 and 2 (values 2, 4): 2's nearest is 1 but not vice versa.
	e = ExplainPair(idx, 1, 2, 3, 0)
	if e.MutualNN {
		t.Errorf("non-mutual pair marked mutual: %+v", e)
	}
	if e.RankBA != 1 || e.RankAB != 2 {
		t.Errorf("ranks = %+v", e)
	}
	// Far pair beyond k: distance still reported via the exact index.
	e = ExplainPair(idx, 0, 6, 2, 0)
	if e.RankAB != 0 || e.RankBA != 0 {
		t.Errorf("far ranks = %+v", e)
	}
	if e.Distance != 0.31 {
		t.Errorf("far distance = %v", e.Distance)
	}
}

func TestBuildCSPairsFastErrorPaths(t *testing.T) {
	r := NewSQLRunner()
	// Without nn_reln loaded, the fast path must fail cleanly.
	err := r.BuildCSPairsFast()
	if err == nil {
		t.Error("fast CSPairs without NN relation accepted")
	}
	if !strings.Contains(err.Error(), "nn_reln") {
		t.Errorf("unexpected error: %v", err)
	}
}

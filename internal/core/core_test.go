package core

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
)

// matrixIndex builds an exact index over n tuples whose pairwise distances
// are given explicitly; keys are the tuple IDs as strings.
func matrixIndex(n int, d func(i, j int) float64) *nnindex.Exact {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = strconv.Itoa(i)
	}
	m := distance.Func{MetricName: "matrix", F: func(a, b string) float64 {
		i, _ := strconv.Atoi(a)
		j, _ := strconv.Atoi(b)
		if i == j {
			return 0
		}
		return d(i, j)
	}}
	return nnindex.NewExact(keys, m)
}

// integersIndex is the Section 3 example: values {1, 2, 4, 20, 22, 30, 32}
// under absolute difference (scaled into [0, 1]).
func integersIndex() *nnindex.Exact {
	vals := []float64{1, 2, 4, 20, 22, 30, 32}
	return matrixIndex(len(vals), func(i, j int) float64 {
		d := vals[i] - vals[j]
		if d < 0 {
			d = -d
		}
		return d / 100
	})
}

// table1Index is the paper's Table 1 media example under edit distance.
func table1Index() *nnindex.Exact {
	keys := []string{
		"The Doors LA Woman",
		"Doors LA Woman",
		"The Beatles A Little Help from My Friends",
		"Beatles, The With A Little Help From My Friend",
		"Shania Twain Im Holdin on to Love",
		"Twian, Shania I'm Holding On To Love",
		"4 th Elemynt Ears/Eyes",
		"4 th Elemynt Ears/Eyes - Part II",
		"4th Elemynt Ears/Eyes - Part III",
		"4 th Elemynt Ears/Eyes - Part IV",
		"Aaliyah Are You Ready",
		"AC DC Are You Ready",
		"Bob Dylan Are You Ready",
		"Creed Are You Ready",
	}
	return nnindex.NewExact(keys, distance.Edit{})
}

func TestAggApply(t *testing.T) {
	tests := []struct {
		agg  Agg
		ngs  []int
		want float64
	}{
		{AggMax, []int{2, 5, 3}, 5},
		{AggMax, []int{7}, 7},
		{AggAvg, []int{2, 4}, 3},
		{AggAvg, []int{3}, 3},
		{AggMax2, []int{2, 5, 3}, 3},
		{AggMax2, []int{5, 5, 2}, 5},
		{AggMax2, []int{7}, 7},
		{AggMax2, []int{1, 9}, 1},
	}
	for _, tt := range tests {
		if got := tt.agg.Apply(tt.ngs); got != tt.want {
			t.Errorf("%v.Apply(%v) = %v, want %v", tt.agg, tt.ngs, got, tt.want)
		}
	}
}

func TestAggApplyEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AggMax.Apply(nil)
}

func TestAggString(t *testing.T) {
	if AggMax.String() != "max" || AggAvg.String() != "avg" || AggMax2.String() != "max2" {
		t.Error("agg names wrong")
	}
	if !strings.Contains(Agg(9).String(), "9") {
		t.Error("unknown agg string")
	}
}

func TestCutValidate(t *testing.T) {
	tests := []struct {
		cut Cut
		ok  bool
	}{
		{Cut{MaxSize: 2}, true},
		{Cut{MaxSize: 100}, true},
		{Cut{Diameter: 0.5}, true},
		{Cut{MaxSize: 3, Diameter: 0.5}, true}, // combined cut (Sec. 3)
		{Cut{MaxSize: 1}, false},
		{Cut{MaxSize: 1, Diameter: 0.5}, false},
		{Cut{}, false},
		{Cut{Diameter: 1.5}, false},
		{Cut{Diameter: -0.5}, false},
	}
	for _, tt := range tests {
		err := tt.cut.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("Cut %+v validate = %v, want ok=%v", tt.cut, err, tt.ok)
		}
	}
	if (Cut{MaxSize: 3}).String() != "DE_S(3)" {
		t.Error("size cut string")
	}
	if !strings.HasPrefix((Cut{Diameter: 0.25}).String(), "DE_D") {
		t.Error("diameter cut string")
	}
}

func TestProblemValidate(t *testing.T) {
	ok := Problem{Cut: Cut{MaxSize: 3}, C: 4}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []Problem{
		{Cut: Cut{MaxSize: 3}, C: 1},        // c must exceed 1
		{Cut: Cut{MaxSize: 3}, C: 0},        // zero c
		{Cut: Cut{}, C: 4},                  // no cut
		{Cut: Cut{MaxSize: 3}, C: 4, P: -1}, // negative growth factor
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestComputeNNIntegers(t *testing.T) {
	idx := integersIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 7 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	// Tuple 0 (value 1): neighbors 1 (d .01), 2 (d .03), 3 (d .19).
	ids := func(row NNRow) []int {
		out := make([]int, len(row.NNList))
		for i, n := range row.NNList {
			out[i] = n.ID
		}
		return out
	}
	if got := ids(rel.Rows[0]); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("NN list of 0 = %v", got)
	}
	// Self-inclusive growths: value 1 -> 2; value 2 -> 2; value 4 -> 3
	// (sphere radius 0.04 contains values 1 and 2); the four outer values
	// (20, 22, 30, 32) -> 2 each.
	wantNG := []int{2, 2, 3, 2, 2, 2, 2}
	for i, want := range wantNG {
		if rel.Rows[i].NG != want {
			t.Errorf("ng(%d) = %d, want %d", i, rel.Rows[i].NG, want)
		}
	}
	if got := rel.NGValues(); !reflect.DeepEqual(got, wantNG) {
		t.Errorf("NGValues = %v", got)
	}
}

func TestComputeNNOrderIndependent(t *testing.T) {
	idx := table1Index()
	base, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{Order: OrderBF})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []LookupOrder{OrderRandom, OrderSequential} {
		rel, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{Order: order, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Rows, rel.Rows) {
			t.Errorf("order %v changed phase-1 output", order)
		}
	}
}

func TestComputeNNParallelMatchesSerial(t *testing.T) {
	idx := table1Index()
	serial, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Rows, par.Rows) {
			t.Fatalf("parallel=%d differs from serial", workers)
		}
	}
	// Diameter cut too.
	serialD, err := ComputeNN(idx, Cut{Diameter: 0.4}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	parD, err := ComputeNN(idx, Cut{Diameter: 0.4}, 2, Phase1Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialD.Rows, parD.Rows) {
		t.Fatal("parallel diameter phase 1 differs from serial")
	}
}

func TestComputeNNParallelRandomInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d, _ := clusteredMatrix(rng, []int{3, 2, 4, 2, 1, 2})
	idx := matrixIndex(len(d), func(i, j int) float64 { return d[i][j] })
	serial, err := ComputeNN(idx, Cut{MaxSize: 5}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeNN(idx, Cut{MaxSize: 5}, 2, Phase1Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Rows, par.Rows) {
		t.Fatal("parallel differs from serial on random instance")
	}
}

func TestComputeNNProgress(t *testing.T) {
	idx := integersIndex()
	var calls []int
	_, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{
		Progress: func(done, total int) {
			if total != idx.Len() {
				t.Errorf("total = %d", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != idx.Len() {
		t.Fatalf("progress called %d times", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress counts not monotone: %v", calls)
		}
	}
	// Parallel path: counts monotone, one call per tuple.
	var par []int
	var mu sync.Mutex
	_, err = ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{
		Parallel: 4,
		Progress: func(done, total int) {
			mu.Lock()
			par = append(par, done)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != idx.Len() {
		t.Fatalf("parallel progress called %d times", len(par))
	}
}

func TestComputeNNValidation(t *testing.T) {
	idx := integersIndex()
	if _, err := ComputeNN(idx, Cut{}, 2, Phase1Options{}); err == nil {
		t.Error("invalid cut accepted")
	}
	if _, err := ComputeNN(idx, Cut{MaxSize: 3}, -1, Phase1Options{}); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{Order: LookupOrder(42)}); err == nil {
		t.Error("unknown order accepted")
	}
}

func TestPartitionIntegersIdeal(t *testing.T) {
	// The Section 3 "ideal" outcome: {1,2,4}, {20,22}, {30,32} — reachable
	// with a size cut K=3 and SN threshold c=4.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestPartitionIntegersTighterC(t *testing.T) {
	// c=3 excludes value 4 (ng=3): the triple cannot form; {1,2} remains.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 3}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestPartitionIntegersK2(t *testing.T) {
	// K=2 caps groups at pairs; 4 must stay single even though compact
	// with {1,2}.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 2}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestPartitionIntegersDiameter(t *testing.T) {
	// DE_D(0.05): within 5 units. {1,2,4} has diameter 3 units = 0.03 < θ,
	// so the triple is allowed; pairs {20,22}, {30,32} likewise.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{Diameter: 0.05}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
	// DE_D(0.025): the triple's diameter (0.03) no longer fits; {1,2} only.
	groups, _, err = Solve(idx, Problem{Cut: Cut{Diameter: 0.025}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want = [][]int{{0, 1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestPartitionCombinedCut(t *testing.T) {
	// Size and diameter together (Section 3's remark): with θ = 0.05 the
	// triple {1,2,4} fits the diameter, but K = 2 caps it at the pair.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 2, Diameter: 0.05}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
	// With K = 3 the combined cut admits the triple again.
	groups, _, err = Solve(idx, Problem{Cut: Cut{MaxSize: 3, Diameter: 0.05}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want = [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
	// And a tight diameter overrides the generous size bound.
	groups, _, err = Solve(idx, Problem{Cut: Cut{MaxSize: 5, Diameter: 0.025}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want = [][]int{{0, 1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
	if (Cut{MaxSize: 3, Diameter: 0.05}).String() != "DE_SD(3, 0.05)" {
		t.Error("combined cut string")
	}
}

func TestSQLPartitionCombinedCut(t *testing.T) {
	idx := integersIndex()
	prob := Problem{Cut: Cut{MaxSize: 2, Diameter: 0.05}, Agg: AggMax, C: 4}
	mem, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqlGroups, _, _, err := SolveSQL(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem, sqlGroups) {
		t.Errorf("combined cut: mem %v vs sql %v", mem, sqlGroups)
	}
}

func TestPartitionTable1(t *testing.T) {
	// The motivating example: DE must find the three duplicate pairs and
	// leave the confusable series alone.
	idx := table1Index()
	groups, rel, err := Solve(idx, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	inSameGroup := func(a, b int) bool {
		for _, g := range groups {
			has := func(x int) bool {
				for _, id := range g {
					if id == x {
						return true
					}
				}
				return false
			}
			if has(a) {
				return has(b)
			}
		}
		return false
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}} {
		if !inSameGroup(pair[0], pair[1]) {
			t.Errorf("duplicate pair %v not grouped; groups = %v", pair, groups)
		}
	}
	// The "Are You Ready" series (10-13) is dense: self-inclusive growth at
	// least 4, so SN(max, 4) keeps each a singleton.
	for id := 10; id <= 13; id++ {
		if rel.Rows[id].NG < 4 {
			t.Errorf("ng(%d) = %d, want >= 4", id, rel.Rows[id].NG)
		}
		for _, g := range groups {
			if len(g) > 1 {
				for _, m := range g {
					if m == id {
						t.Errorf("series tuple %d grouped: %v", id, g)
					}
				}
			}
		}
	}
}

func TestDEDDiameterGuarantee(t *testing.T) {
	// Random instance: every emitted DE_D group must have diameter < θ.
	rng := rand.New(rand.NewSource(21))
	const n = 40
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	idx := matrixIndex(n, func(i, j int) float64 { return d[i][j] })
	const theta = 0.3
	groups, _, err := Solve(idx, Problem{Cut: Cut{Diameter: theta}, Agg: AggMax, C: 10}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if dd := Diameter(idx, g); dd >= theta {
			t.Errorf("group %v diameter %v >= θ %v", g, dd, theta)
		}
	}
}

func TestPartitionIsPartition(t *testing.T) {
	idx := table1Index()
	for _, cut := range []Cut{{MaxSize: 4}, {Diameter: 0.4}} {
		groups, _, err := Solve(idx, Problem{Cut: cut, Agg: AggAvg, C: 4}, Phase1Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, id := range g {
				if seen[id] {
					t.Fatalf("cut %v: tuple %d in two groups", cut, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != idx.Len() {
			t.Errorf("cut %v: %d tuples covered, want %d", cut, len(seen), idx.Len())
		}
	}
}

func TestExcludePredicate(t *testing.T) {
	idx := integersIndex()
	// Forbid grouping tuples 0 and 1 (values 1 and 2): the triple and the
	// pair {0,1} are both ruled out; no valid group containing both
	// remains, and since every closure of 0 or 1 starts with the other,
	// both end up singletons.
	prob := Problem{
		Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4,
		Exclude: func(a, b int) bool {
			return (a == 0 && b == 1) || (a == 1 && b == 0)
		},
	}
	groups, _, err := Solve(idx, prob, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0}, {1}, {2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestMinimalCompactSplitting(t *testing.T) {
	// The Section 4.4.2 scenario: three duplicate pairs that together form
	// one big compact set (the whole relation is trivially compact).
	// Positions: 0/0.01, 0.10/0.11, 0.20/0.21.
	pos := []float64{0, 0.01, 0.10, 0.11, 0.20, 0.21}
	idx := matrixIndex(len(pos), func(i, j int) float64 {
		d := pos[i] - pos[j]
		if d < 0 {
			d = -d
		}
		return d
	})
	// Without minimality: one six-tuple group (K=6 allows it, every ng=2).
	merged, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 6}, Agg: AggMax, C: 3}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0]) != 6 {
		t.Fatalf("expected one merged group, got %v", merged)
	}
	// With minimality: split into the three pairs.
	minimal, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 6}, Agg: AggMax, C: 3, MinimalCompact: true}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3}, {4, 5}}
	if !reflect.DeepEqual(minimal, want) {
		t.Errorf("minimal groups = %v, want %v", minimal, want)
	}
}

func TestMinimalCompactLeavesRealGroups(t *testing.T) {
	// A genuine triple must survive the minimality pass: {1,2,4} contains
	// the compact pair {1,2}, but no second disjoint non-trivial compact
	// subset, so it is already minimal.
	idx := integersIndex()
	groups, _, err := Solve(idx, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4, MinimalCompact: true}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func TestPartitionCutMismatch(t *testing.T) {
	idx := integersIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(rel, Problem{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 4}); err == nil {
		t.Error("cut mismatch accepted")
	}
	if _, err := Partition(rel, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 0.5}); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestZeroDistanceTwins(t *testing.T) {
	// Exact duplicates (distance 0) should pair up, not blow up.
	keys := []string{"same", "same", "other thing entirely"}
	idx := nnindex.NewExact(keys, distance.Edit{})
	groups, rel, err := Solve(idx, Problem{Cut: Cut{MaxSize: 2}, Agg: AggMax, C: 4}, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2}}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
	if rel.Rows[0].NG != 2 {
		t.Errorf("ng of zero-distance twin = %d, want 2", rel.Rows[0].NG)
	}
}

func TestSNHoldsSingleton(t *testing.T) {
	rows := []NNRow{{NG: 99}}
	if !SNHolds(rows, []int{0}, AggMax, 2) {
		t.Error("singleton must satisfy SN regardless of growth")
	}
}

func TestIsCompactSetShortList(t *testing.T) {
	rows := []NNRow{
		{NNList: []nnindex.Neighbor{{ID: 1, Dist: 0.1}}},
		{NNList: []nnindex.Neighbor{{ID: 0, Dist: 0.1}}},
	}
	if !IsCompactSet(rows, 0, 2) {
		t.Error("mutual pair should be compact at j=2")
	}
	if IsCompactSet(rows, 0, 3) {
		t.Error("j beyond list length should be false")
	}
	if IsCompactSet(rows, 0, 1) {
		t.Error("j=1 is trivial and excluded")
	}
}

func TestEstimateSNThreshold(t *testing.T) {
	// 30% duplicates at ng=2, 60% series uniques spiking at ng=5, 10% at 8.
	var ngs []int
	for i := 0; i < 30; i++ {
		ngs = append(ngs, 2)
	}
	for i := 0; i < 60; i++ {
		ngs = append(ngs, 5)
	}
	for i := 0; i < 10; i++ {
		ngs = append(ngs, 8)
	}
	c, err := EstimateSNThreshold(ngs, 0.3, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c != 5 {
		t.Errorf("estimated c = %v, want 5 (the unique-tuple spike)", c)
	}
	// Duplicates (ng=2) stay below c; uniques (ng=5) are excluded.
	if !(2 < c && !(5 < c)) {
		t.Errorf("threshold semantics broken: c = %v", c)
	}
}

func TestEstimateSNThresholdFallback(t *testing.T) {
	// No spike in the window: smooth growth distribution.
	var ngs []int
	for v := 2; v <= 21; v++ {
		for i := 0; i < 5; i++ {
			ngs = append(ngs, v)
		}
	}
	c, err := EstimateSNThreshold(ngs, 0.3, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// (0.35)-percentile of 2..21 over 100 tuples: value 8; fallback adds 1.
	if c != 9 {
		t.Errorf("fallback c = %v, want 9", c)
	}
}

func TestEstimateSNThresholdErrors(t *testing.T) {
	if _, err := EstimateSNThreshold(nil, 0.3, EstimateOptions{}); err == nil {
		t.Error("empty NG column accepted")
	}
	if _, err := EstimateSNThreshold([]int{2, 3}, 0, EstimateOptions{}); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := EstimateSNThreshold([]int{2, 3}, 1, EstimateOptions{}); err == nil {
		t.Error("f=1 accepted")
	}
}

func TestEstimateThenSolveIntegers(t *testing.T) {
	// End-to-end §4.3 usage: estimate c from the NG column, then solve.
	idx := integersIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, 2, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 7 tuples are "duplicates" in the ideal triple reading; f≈0.43.
	c, err := EstimateSNThreshold(rel.NGValues(), 0.43, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 1 {
		t.Fatalf("estimated c = %v", c)
	}
	groups, err := Partition(rel, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: c})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever c was estimated, the output must be a valid partition with
	// the two far pairs intact.
	if len(groups) < 3 {
		t.Errorf("groups = %v", groups)
	}
}

func TestLookupOrderString(t *testing.T) {
	if OrderBF.String() != "bf" || OrderRandom.String() != "random" || OrderSequential.String() != "sequential" {
		t.Error("order names wrong")
	}
	if !strings.Contains(LookupOrder(7).String(), "7") {
		t.Error("unknown order string")
	}
}

package core

import (
	"strconv"
	"testing"

	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
)

// statsIndex is a small relation with one obvious duplicate pair under
// the absolute-difference metric over integer keys.
func statsIndex() *nnindex.Exact {
	keys := []string{"0", "1", "50", "51", "200", "400", "800"}
	metric := distance.Func{MetricName: "absdiff", F: func(a, b string) float64 {
		x, _ := strconv.Atoi(a)
		y, _ := strconv.Atoi(b)
		d := float64(x - y)
		if d < 0 {
			d = -d
		}
		return d / 1000
	}}
	return nnindex.NewExact(keys, metric)
}

func TestPhase1StatsCounts(t *testing.T) {
	idx := statsIndex()
	var stats Phase1Stats
	_, err := ComputeNN(idx, Cut{MaxSize: 3}, DefaultP, Phase1Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(idx.Len())
	if got := stats.Lookups.Load(); got != n {
		t.Errorf("lookups = %d, want %d", got, n)
	}
	// Every tuple issues a TopK probe plus a GrowthCount probe.
	if got := stats.Probes.Load(); got != 2*n {
		t.Errorf("probes = %d, want %d", got, 2*n)
	}
	if stats.Workers.Load() != 1 {
		t.Errorf("workers = %d, want 1 (serial)", stats.Workers.Load())
	}
}

func TestPhase1StatsParallelWorkers(t *testing.T) {
	idx := statsIndex()
	var stats Phase1Stats
	_, err := ComputeNN(idx, Cut{MaxSize: 2}, DefaultP, Phase1Options{Parallel: 3, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers.Load() != 3 {
		t.Errorf("workers = %d, want 3", stats.Workers.Load())
	}
	if got := stats.Lookups.Load(); got != int64(idx.Len()) {
		t.Errorf("lookups = %d, want %d", got, idx.Len())
	}
}

func TestPartitionStats(t *testing.T) {
	idx := statsIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, DefaultP, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	var stats PartitionStats
	groups, err := PartitionWithStats(rel, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != len(groups) {
		t.Errorf("stats.Groups = %d, partition has %d", stats.Groups, len(groups))
	}
	dups := 0
	for _, g := range groups {
		if len(g) >= 2 {
			dups++
		}
	}
	if stats.Duplicates != dups {
		t.Errorf("stats.Duplicates = %d, want %d", stats.Duplicates, dups)
	}
	if stats.Duplicates == 0 {
		t.Error("expected at least one duplicate group in the fixture")
	}
	if stats.Candidates == 0 {
		t.Error("no candidates examined")
	}
	// Accounting closes: every candidate either formed a group or was
	// rejected for exactly one recorded reason.
	accepted := stats.Candidates - stats.RejectedAssigned - stats.RejectedCompact -
		stats.RejectedSN - stats.RejectedExcluded
	if accepted != stats.Duplicates {
		t.Errorf("accepted candidates = %d, want %d (stats %+v)", accepted, stats.Duplicates, stats)
	}
}

func TestPartitionStatsExcluded(t *testing.T) {
	idx := statsIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 2}, DefaultP, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	var stats PartitionStats
	groups, err := PartitionWithStats(rel, Problem{
		Cut: Cut{MaxSize: 2}, Agg: AggMax, C: 4,
		Exclude: func(a, b int) bool { return true }, // nothing may pair
	}, &stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if len(g) > 1 {
			t.Fatalf("exclude-all still grouped %v", g)
		}
	}
	if stats.RejectedExcluded == 0 {
		t.Error("no excluded rejections recorded")
	}
	if stats.Duplicates != 0 {
		t.Errorf("duplicates = %d, want 0", stats.Duplicates)
	}
}

// TestPartitionNilStats keeps the uninstrumented path working.
func TestPartitionNilStats(t *testing.T) {
	idx := statsIndex()
	rel, err := ComputeNN(idx, Cut{MaxSize: 3}, DefaultP, Phase1Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Partition(rel, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionWithStats(rel, Problem{Cut: Cut{MaxSize: 3}, Agg: AggMax, C: 4}, &PartitionStats{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("stats changed the partition: %v vs %v", a, b)
	}
}

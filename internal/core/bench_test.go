package core

import (
	"fmt"
	"math/rand"
	"testing"

	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
)

// benchIndex builds a clustered synthetic instance of n tuples.
func benchIndex(n int) *nnindex.Exact {
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 0, n)
	letters := []rune("abcdefghijklmnopqrstuvwxyz")
	for len(keys) < n {
		base := make([]rune, 12)
		for i := range base {
			base[i] = letters[rng.Intn(len(letters))]
		}
		keys = append(keys, string(base))
		if rng.Intn(3) == 0 && len(keys) < n {
			noisy := append([]rune(nil), base...)
			noisy[rng.Intn(len(noisy))] = letters[rng.Intn(len(letters))]
			keys = append(keys, string(noisy))
		}
	}
	return nnindex.NewExact(keys, distance.Edit{})
}

func BenchmarkComputeNN(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			idx := benchIndex(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartition(b *testing.B) {
	idx := benchIndex(400)
	rel, err := ComputeNN(idx, Cut{MaxSize: 4}, 2, Phase1Options{})
	if err != nil {
		b.Fatal(err)
	}
	prob := Problem{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(rel, prob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLPhase2(b *testing.B) {
	idx := benchIndex(200)
	prob := Problem{Cut: Cut{MaxSize: 4}, Agg: AggMax, C: 4}
	rel, err := ComputeNN(idx, prob.Cut, 2, Phase1Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewSQLRunner()
		if err := r.LoadNNRelation(rel); err != nil {
			b.Fatal(err)
		}
		if err := r.BuildCSPairs(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Partition(prob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateSNThreshold(b *testing.B) {
	ngs := make([]int, 10000)
	rng := rand.New(rand.NewSource(9))
	for i := range ngs {
		ngs[i] = 2 + rng.Intn(8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateSNThreshold(ngs, 0.25, EstimateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"fmt"

	"fuzzydup/internal/nnindex"
)

// Partition runs phase 2: from the NN relation, partition the tuples into
// the minimum number of groups such that each group is a compact set, an
// SN(Agg, C) group, and satisfies the cut specification. The result is a
// full partition of 0..n-1 (singletons included), canonically ordered.
//
// The algorithm follows Section 4.2: process tuples in ascending ID order;
// for an unassigned tuple v, find the largest non-trivial compact SN group
// {v} ∪ top_{j-1}(v) that also satisfies the cut and the optional
// constraining predicate, emit it, and mark its members. Compactness is
// decided by the pairwise CSj equalities of the CSPairs construction; set
// equality being transitive, comparing every member against v suffices.
func Partition(rel *NNRelation, prob Problem) ([][]int, error) {
	return PartitionWithStats(rel, prob, nil)
}

// PartitionStats counts the work and the decisions of one Partition run:
// how many candidate groups were examined, why rejected candidates fell
// out (the CS/SN criteria make every decision inspectable — the counters
// aggregate the same facts ExplainPair reports per pair), and how many
// non-minimal groups the Section 4.4.2 post-processing split.
type PartitionStats struct {
	// Groups is the number of groups in the final partition, singletons
	// included; Duplicates counts only groups of size >= 2.
	Groups     int
	Duplicates int
	// Candidates is the number of candidate (anchor, size) groups
	// examined across all anchors.
	Candidates int
	// RejectedAssigned counts candidates containing an already-assigned
	// member; RejectedCompact candidates failing the compact-set check;
	// RejectedSN candidates failing the sparse-neighborhood check;
	// RejectedExcluded candidates vetoed by the constraining predicate.
	RejectedAssigned int
	RejectedCompact  int
	RejectedSN       int
	RejectedExcluded int
	// Splits is the number of groups the minimal-compact post-processing
	// decomposed (0 unless Problem.MinimalCompact).
	Splits int
}

// PartitionWithStats is Partition with instrumentation: when stats is
// non-nil it is filled with the run's counters. Passing nil costs nothing
// measurable — Partition is the cheap phase.
func PartitionWithStats(rel *NNRelation, prob Problem, stats *PartitionStats) ([][]int, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if prob.Cut != rel.Cut {
		return nil, fmt.Errorf("core: NN relation computed for %v, problem asks %v", rel.Cut, prob.Cut)
	}
	if stats == nil {
		stats = &PartitionStats{} // discard: keeps the hot loop branch-free
	}
	n := len(rel.Rows)
	assigned := make([]bool, n)
	groups := make([][]int, 0, n)
	for v := 0; v < n; v++ {
		if assigned[v] {
			continue
		}
		g := largestCompactSNGroup(rel, prob, assigned, v, stats)
		for _, id := range g {
			assigned[id] = true
		}
		groups = append(groups, g)
	}
	if prob.MinimalCompact {
		groups = splitNonMinimal(rel, groups, stats)
	}
	groups = sortGroups(groups)
	stats.Groups = len(groups)
	for _, g := range groups {
		if len(g) >= 2 {
			stats.Duplicates++
		}
	}
	return groups, nil
}

// largestCompactSNGroup returns the largest valid group anchored at v, or
// the singleton {v} when none exists.
func largestCompactSNGroup(rel *NNRelation, prob Problem, assigned []bool, v int, stats *PartitionStats) []int {
	list := rel.Rows[v].NNList
	jmax := len(list) + 1
	if prob.Cut.MaxSize > 0 && jmax > prob.Cut.MaxSize {
		jmax = prob.Cut.MaxSize
	}
	for j := jmax; j >= 2; j-- {
		stats.Candidates++
		group := make([]int, 0, j)
		group = append(group, v)
		ok := true
		for _, nb := range list[:j-1] {
			if assigned[nb.ID] {
				ok = false
				break
			}
			group = append(group, nb.ID)
		}
		if !ok {
			stats.RejectedAssigned++
			continue
		}
		if !IsCompactSet(rel.Rows, v, j) {
			stats.RejectedCompact++
			continue
		}
		if !SNHolds(rel.Rows, group, prob.Agg, prob.C) {
			stats.RejectedSN++
			continue
		}
		if prob.Exclude != nil && violatesExclude(group, prob.Exclude) {
			stats.RejectedExcluded++
			continue
		}
		return group
	}
	return []int{v}
}

// violatesExclude reports whether any pair in the group is ruled out by
// the constraining predicate (Section 4.4.1).
func violatesExclude(group []int, exclude func(a, b int) bool) bool {
	for i := 0; i < len(group); i++ {
		for k := i + 1; k < len(group); k++ {
			if exclude(group[i], group[k]) {
				return true
			}
		}
	}
	return false
}

// splitNonMinimal applies the Section 4.4.2 minimality post-processing:
// a group that contains two disjoint non-trivial compact subsets is a
// merger of smaller compact sets and is split into minimal pieces.
func splitNonMinimal(rel *NNRelation, groups [][]int, stats *PartitionStats) [][]int {
	var out [][]int
	for _, g := range groups {
		pieces := SplitMinimal(rel.Rows, g)
		if len(pieces) > 1 {
			stats.Splits++
		}
		out = append(out, pieces...)
	}
	return out
}

// SplitMinimal decomposes one group into minimal compact sets (the
// Section 4.4.2 post-processing applied to a single group). It is a pure
// function of the group's members' NN rows, which is what lets the
// incremental engine re-split only repaired groups. Proper non-trivial
// compact subsets of a group are closures of their members, so it suffices
// to scan each member's closures that stay inside the group.
func SplitMinimal(rows []NNRow, g []int) [][]int {
	if len(g) <= 2 {
		return [][]int{g}
	}
	inG := make(map[int]struct{}, len(g))
	for _, id := range g {
		inG[id] = struct{}{}
	}
	// Collect proper compact sub-closures, smallest first, so the
	// decomposition prefers minimal pieces.
	type sub struct {
		members []int
		size    int
	}
	var subs []sub
	for _, v := range g {
		maxJ := len(g) - 1 // proper subsets only
		if l := len(rows[v].NNList) + 1; l < maxJ {
			maxJ = l
		}
		for j := 2; j <= maxJ; j++ {
			if !IsCompactSet(rows, v, j) {
				continue
			}
			members := []int{v}
			inside := true
			for _, nb := range rows[v].NNList[:j-1] {
				if _, ok := inG[nb.ID]; !ok {
					inside = false
					break
				}
				members = append(members, nb.ID)
			}
			if inside {
				subs = append(subs, sub{members: members, size: j})
			}
		}
	}
	if len(subs) == 0 {
		return [][]int{g}
	}
	// The group is non-minimal only if two *disjoint* non-trivial compact
	// subsets exist. Greedily take the smallest disjoint sub-closures.
	taken := make(map[int]struct{})
	var pieces [][]int
	for size := 2; size < len(g); size++ {
		for _, s := range subs {
			if s.size != size {
				continue
			}
			disjoint := true
			for _, id := range s.members {
				if _, ok := taken[id]; ok {
					disjoint = false
					break
				}
			}
			if !disjoint {
				continue
			}
			for _, id := range s.members {
				taken[id] = struct{}{}
			}
			pieces = append(pieces, s.members)
		}
	}
	if len(pieces) < 2 {
		// At most one compact subset: no disjoint pair, the group is
		// already minimal.
		return [][]int{g}
	}
	// Leftover members become singletons.
	for _, id := range g {
		if _, ok := taken[id]; !ok {
			pieces = append(pieces, []int{id})
		}
	}
	return pieces
}

// Solve runs both phases end to end against a nearest-neighbor index.
// It returns the partition and the intermediate NN relation (useful for
// diagnostics and for the SN-threshold estimator).
func Solve(idx nnindex.Index, prob Problem, opts Phase1Options) ([][]int, *NNRelation, error) {
	if err := prob.Validate(); err != nil {
		return nil, nil, err
	}
	rel, err := ComputeNN(idx, prob.Cut, prob.growthFactor(), opts)
	if err != nil {
		return nil, nil, err
	}
	groups, err := Partition(rel, prob)
	if err != nil {
		return nil, nil, err
	}
	return groups, rel, nil
}

// Diameter returns the maximum pairwise distance within the group under
// the given index; used by tests to verify the DE_D(θ) guarantee.
func Diameter(idx *nnindex.Exact, group []int) float64 {
	var d float64
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			if dd := idx.Distance(group[i], group[j]); dd > d {
				d = dd
			}
		}
	}
	return d
}

package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fuzzydup/internal/nnindex"
	"fuzzydup/internal/sqldb"
)

// SQLRunner executes the partitioning phase the way the paper's prototype
// does (Figure 3's architecture): as a client issuing SQL against a
// database server. Phase 1's output is loaded into an NN_Reln table; a
// SELECT INTO self-join materializes CSPairs using registered scalar
// functions for the neighbor-set comparisons (the paper's UDF approach);
// and the CS-group ORDER BY query drives the client-side grouping loop.
//
// The in-memory Partition and the SQL path must produce identical
// partitions; tests assert it. The SQL path exists to reproduce the
// paper's architecture and to exercise the sqldb substrate end to end.
type SQLRunner struct {
	db *sqldb.DB
}

// NewSQLRunner opens a fresh embedded database and registers the
// comparison functions.
func NewSQLRunner() *SQLRunner {
	r := &SQLRunner{db: sqldb.Open()}
	r.registerFuncs()
	return r
}

// DB exposes the underlying database (for inspection in tests and the
// sqlsh REPL).
func (r *SQLRunner) DB() *sqldb.DB { return r.db }

// encodeIDList serializes an ordered neighbor list as "3,17,42".
func encodeIDList(list []nnindex.Neighbor) string {
	if len(list) == 0 {
		return ""
	}
	parts := make([]string, len(list))
	for i, n := range list {
		parts[i] = strconv.Itoa(n.ID)
	}
	return strings.Join(parts, ",")
}

// decodeIDList parses the "3,17,42" form.
func decodeIDList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("core: bad ID list %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}

// registerFuncs installs the two scalar functions the CSPairs query uses:
//
//	nn_mutual(id1, list1, id2, list2) -> BOOL
//	  whether each tuple appears in the other's neighbor list (the join
//	  predicate of the CSPairs construction step).
//
//	cs_flags(id1, list1, id2, list2) -> TEXT
//	  the CS2..CSm booleans as a string of '0'/'1', where flag j-2 says
//	  whether the closed j-neighbor sets of the two tuples coincide.
func (r *SQLRunner) registerFuncs() {
	argLists := func(args []sqldb.Value) (id1 int, l1 []int, id2 int, l2 []int, err error) {
		if args[0].Kind != sqldb.KindInt || args[2].Kind != sqldb.KindInt ||
			args[1].Kind != sqldb.KindText || args[3].Kind != sqldb.KindText {
			return 0, nil, 0, nil, fmt.Errorf("core: nn functions take (INT, TEXT, INT, TEXT)")
		}
		l1, err = decodeIDList(args[1].Str)
		if err != nil {
			return
		}
		l2, err = decodeIDList(args[3].Str)
		if err != nil {
			return
		}
		return int(args[0].Int), l1, int(args[2].Int), l2, nil
	}
	r.db.RegisterFunc("nn_mutual", 4, func(args []sqldb.Value) (sqldb.Value, error) {
		id1, l1, id2, l2, err := argLists(args)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Bool(containsID(l1, id2) && containsID(l2, id1)), nil
	})
	r.db.RegisterFunc("cs_flags", 4, func(args []sqldb.Value) (sqldb.Value, error) {
		id1, l1, id2, l2, err := argLists(args)
		if err != nil {
			return sqldb.Value{}, err
		}
		return sqldb.Text(csFlags(id1, l1, id2, l2)), nil
	})
}

func containsID(list []int, id int) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}

// csFlags computes the CS2..CSm booleans over two ordered neighbor lists;
// flag j-2 (character index) is '1' iff {id1} ∪ l1[:j-1] == {id2} ∪ l2[:j-1].
func csFlags(id1 int, l1 []int, id2 int, l2 []int) string {
	m := len(l1)
	if len(l2) < m {
		m = len(l2)
	}
	flags := make([]byte, 0, m)
	for j := 2; j <= m+1; j++ {
		set := make(map[int]struct{}, j)
		set[id1] = struct{}{}
		for _, id := range l1[:j-1] {
			set[id] = struct{}{}
		}
		equal := len(set) == j
		if equal {
			if _, ok := set[id2]; !ok {
				equal = false
			}
		}
		if equal {
			for _, id := range l2[:j-1] {
				if _, ok := set[id]; !ok {
					equal = false
					break
				}
			}
		}
		if equal {
			flags = append(flags, '1')
		} else {
			flags = append(flags, '0')
		}
	}
	return string(flags)
}

// LoadNNRelation materializes phase 1's output as the NN_Reln table.
func (r *SQLRunner) LoadNNRelation(rel *NNRelation) error {
	if _, err := r.db.Exec("CREATE TABLE nn_reln (id INT, nnlist TEXT, ng INT)"); err != nil {
		return err
	}
	for id, row := range rel.Rows {
		if err := r.db.Insert("nn_reln",
			sqldb.Int(int64(id)), sqldb.Text(encodeIDList(row.NNList)), sqldb.Int(int64(row.NG))); err != nil {
			return err
		}
	}
	return nil
}

// BuildCSPairs runs the CSPairs construction step: the SELECT INTO
// self-join of NN_Reln on mutual neighbor containment (Section 4.2).
func (r *SQLRunner) BuildCSPairs() error {
	_, err := r.db.Exec(`
		SELECT n1.id AS id1, n2.id AS id2, n1.ng AS ng1, n2.ng AS ng2,
		       cs_flags(n1.id, n1.nnlist, n2.id, n2.nnlist) AS cs
		INTO cspairs
		FROM nn_reln n1, nn_reln n2
		WHERE n1.id < n2.id AND nn_mutual(n1.id, n1.nnlist, n2.id, n2.nnlist)`)
	return err
}

// BuildCSPairsFast materializes the same CSPairs relation as
// BuildCSPairs but avoids the quadratic self-join: the neighbor lists are
// exploded into an edge table nn_edges(id, nid), so that "u is in v's
// list AND v is in u's list" becomes an equi-join the engine executes as
// a hash join over O(n·K) rows instead of probing all n² pairs. The
// result is identical; tests assert it. This is the optimization a real
// deployment would apply once relations outgrow the nested-loop join —
// the paper's complexity analysis already prices CSPairs at O(K·|R|).
func (r *SQLRunner) BuildCSPairsFast() error {
	if _, err := r.db.Exec("CREATE TABLE nn_edges (id INT, nid INT)"); err != nil {
		return err
	}
	res, err := r.db.Exec("SELECT id, nnlist FROM nn_reln")
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		id := row[0].Int
		ids, err := decodeIDList(row[1].Str)
		if err != nil {
			return err
		}
		for _, nid := range ids {
			if err := r.db.Insert("nn_edges", sqldb.Int(id), sqldb.Int(int64(nid))); err != nil {
				return err
			}
		}
	}
	// Mutual containment = the edge (a,b) with a<b exists in both
	// directions: join the edge table with its transpose, then attach the
	// two NN_Reln rows (again by equi-join) for the flag computation.
	_, err = r.db.Exec(`
		SELECT e.id AS id1, e.nid AS id2, n1.ng AS ng1, n2.ng AS ng2,
		       cs_flags(n1.id, n1.nnlist, n2.id, n2.nnlist) AS cs
		INTO cspairs
		FROM nn_edges e, nn_edges back, nn_reln n1, nn_reln n2
		WHERE e.id < e.nid
		  AND back.id = e.nid AND back.nid = e.id
		  AND n1.id = e.id AND n2.id = e.nid`)
	return err
}

// LoadNNRelationWide materializes phase 1's output with the NN-List
// expanded into one column per neighbor (nn1..nnK, NULL-padded) — the
// representation under which the paper notes the whole CSPairs
// computation needs only standard SQL, no user-defined functions.
func (r *SQLRunner) LoadNNRelationWide(rel *NNRelation, k int) error {
	ddl := "CREATE TABLE nn_wide (id INT, ng INT"
	for i := 1; i <= k; i++ {
		ddl += fmt.Sprintf(", nn%d INT", i)
	}
	ddl += ")"
	if _, err := r.db.Exec(ddl); err != nil {
		return err
	}
	for id, row := range rel.Rows {
		vals := make([]sqldb.Value, 0, k+2)
		vals = append(vals, sqldb.Int(int64(id)), sqldb.Int(int64(row.NG)))
		for i := 0; i < k; i++ {
			if i < len(row.NNList) {
				vals = append(vals, sqldb.Int(int64(row.NNList[i].ID)))
			} else {
				vals = append(vals, sqldb.Null())
			}
		}
		if err := r.db.Insert("nn_wide", vals...); err != nil {
			return err
		}
	}
	return nil
}

// BuildCSPairsPureSQL materializes CSPairs from the widened relation with
// generated CASE expressions only — the paper's Size-K observation that
// "when the ID-List attribute is expanded into K attributes ... we can
// use standard SQL and perform all of the computation at the database
// server". The CSj flag tests equality of the closed j-neighbor sets
// {id, nn1..nn(j-1)} by mutual containment (both sets have exactly j
// distinct elements, so one-directional containment plus the symmetric
// check is equality).
func (r *SQLRunner) BuildCSPairsPureSQL(k int) error {
	elems := func(alias string, j int) []string {
		out := []string{alias + ".id"}
		for i := 1; i < j; i++ {
			out = append(out, fmt.Sprintf("%s.nn%d", alias, i))
		}
		return out
	}
	containedIn := func(x string, set []string) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = fmt.Sprintf("%s = %s", x, s)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	setEqual := func(j int) string {
		a, b := elems("n1", j), elems("n2", j)
		var conj []string
		for _, x := range a {
			conj = append(conj, containedIn(x, b))
		}
		for _, x := range b {
			conj = append(conj, containedIn(x, a))
		}
		return strings.Join(conj, " AND ")
	}

	var caseCols []string
	for j := 2; j <= k; j++ {
		caseCols = append(caseCols,
			fmt.Sprintf("CASE WHEN %s THEN 1 ELSE 0 END AS cs%d", setEqual(j), j))
	}
	// Mutual K-NN containment as the join predicate, also in pure SQL.
	var mutual []string
	mutual = append(mutual, containedIn("n1.id", elems("n2", k+1)[1:]))
	mutual = append(mutual, containedIn("n2.id", elems("n1", k+1)[1:]))

	query := fmt.Sprintf(`
		SELECT n1.id AS id1, n2.id AS id2, n1.ng AS ng1, n2.ng AS ng2, %s
		INTO cspairs_wide
		FROM nn_wide n1, nn_wide n2
		WHERE n1.id < n2.id AND %s`,
		strings.Join(caseCols, ", "), strings.Join(mutual, " AND "))
	_, err := r.db.Exec(query)
	return err
}

// WideFlags reads back the pure-SQL CSPairs flags in the same form the
// UDF path produces: (min,max) pair to a '0'/'1' string over CS2..CSK.
func (r *SQLRunner) WideFlags(k int) (map[[2]int]string, error) {
	cols := "id1, id2"
	for j := 2; j <= k; j++ {
		cols += fmt.Sprintf(", cs%d", j)
	}
	res, err := r.db.Exec("SELECT " + cols + " FROM cspairs_wide ORDER BY id1, id2")
	if err != nil {
		return nil, err
	}
	flags := make(map[[2]int]string, len(res.Rows))
	for _, row := range res.Rows {
		a, b := int(row[0].Int), int(row[1].Int)
		buf := make([]byte, 0, k-1)
		for j := 2; j <= k; j++ {
			if row[j].Int == 1 {
				buf = append(buf, '1')
			} else {
				buf = append(buf, '0')
			}
		}
		flags[[2]int{a, b}] = string(buf)
	}
	return flags, nil
}

// Partition runs the partitioning step: the CS-group ORDER BY query over
// CSPairs, then the client-side grouping loop that extends pairwise set
// equality to maximal compact SN groups.
func (r *SQLRunner) Partition(prob Problem) ([][]int, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	// Tuple universe, NG values, and list lengths from NN_Reln.
	res, err := r.db.Exec("SELECT id, nnlist, ng FROM nn_reln ORDER BY id")
	if err != nil {
		return nil, err
	}
	n := len(res.Rows)
	rows := make([]NNRow, n)
	for _, row := range res.Rows {
		id := int(row[0].Int)
		if id < 0 || id >= n {
			return nil, fmt.Errorf("core: NN_Reln ids are not dense 0..n-1 (saw %d of %d)", id, n)
		}
		ids, err := decodeIDList(row[1].Str)
		if err != nil {
			return nil, err
		}
		list := make([]nnindex.Neighbor, len(ids))
		for i, nid := range ids {
			list[i] = nnindex.Neighbor{ID: nid}
		}
		rows[id] = NNRow{NNList: list, NG: int(row[2].Int)}
	}

	// The CS-group query of the paper.
	res, err = r.db.Exec("SELECT id1, id2, cs FROM cspairs ORDER BY id1, id2")
	if err != nil {
		return nil, err
	}
	flags := make(map[[2]int]string, len(res.Rows))
	for _, row := range res.Rows {
		a, b := int(row[0].Int), int(row[1].Int)
		flags[[2]int{a, b}] = row[2].Str
	}
	flagAt := func(a, b, j int) bool {
		if a > b {
			a, b = b, a
		}
		f := flags[[2]int{a, b}]
		return j-2 < len(f) && f[j-2] == '1'
	}

	assigned := make([]bool, n)
	var groups [][]int
	for v := 0; v < n; v++ {
		if assigned[v] {
			continue
		}
		list := rows[v].NNList
		jmax := len(list) + 1
		if prob.Cut.MaxSize > 0 && jmax > prob.Cut.MaxSize {
			jmax = prob.Cut.MaxSize
		}
		var emitted []int
		for j := jmax; j >= 2; j-- {
			group := []int{v}
			ok := true
			for _, nb := range list[:j-1] {
				if assigned[nb.ID] || !flagAt(v, nb.ID, j) {
					ok = false
					break
				}
				group = append(group, nb.ID)
			}
			if !ok || !SNHolds(rows, group, prob.Agg, prob.C) {
				continue
			}
			if prob.Exclude != nil && violatesExclude(group, prob.Exclude) {
				continue
			}
			emitted = group
			break
		}
		if emitted == nil {
			emitted = []int{v}
		}
		for _, id := range emitted {
			assigned[id] = true
		}
		groups = append(groups, emitted)
	}
	if prob.MinimalCompact {
		rel := &NNRelation{Rows: rows, Cut: prob.Cut, P: prob.growthFactor()}
		groups = splitNonMinimal(rel, groups, &PartitionStats{})
	}
	return sortGroups(groups), nil
}

// SolveSQL runs the full pipeline with phase 2 executed as SQL: phase 1
// against the index, NN_Reln load, CSPairs construction, and the
// partitioning step. It returns the partition, the NN relation, and the
// runner (whose database can be inspected afterwards).
func SolveSQL(idx nnindex.Index, prob Problem, opts Phase1Options) ([][]int, *NNRelation, *SQLRunner, error) {
	if err := prob.Validate(); err != nil {
		return nil, nil, nil, err
	}
	rel, err := ComputeNN(idx, prob.Cut, prob.growthFactor(), opts)
	if err != nil {
		return nil, nil, nil, err
	}
	r := NewSQLRunner()
	if err := r.LoadNNRelation(rel); err != nil {
		return nil, nil, nil, err
	}
	if err := r.BuildCSPairs(); err != nil {
		return nil, nil, nil, err
	}
	groups, err := r.Partition(prob)
	if err != nil {
		return nil, nil, nil, err
	}
	return groups, rel, r, nil
}

// NGDistributionSQL returns the NG histogram via SQL — the aggregate query
// a practitioner would use to eyeball the Section 4.3 threshold.
func (r *SQLRunner) NGDistributionSQL() (map[int]int, error) {
	res, err := r.db.Exec("SELECT ng, COUNT(*) AS cnt FROM nn_reln GROUP BY ng ORDER BY ng")
	if err != nil {
		return nil, err
	}
	hist := make(map[int]int, len(res.Rows))
	for _, row := range res.Rows {
		hist[int(row[0].Int)] = int(row[1].Int)
	}
	return hist, nil
}

// sortGroupsCopy is a test helper ensuring deterministic comparison forms.
func sortGroupsCopy(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	for i, g := range groups {
		out[i] = append([]int(nil), g...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

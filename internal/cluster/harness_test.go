package cluster

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
)

// testLogger routes cluster logs through the test's own output so they
// only surface on failure.
func testLogger(t testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(logWriter{t}, &slog.HandlerOptions{Level: slog.LevelWarn}))
}

type logWriter struct{ t testing.TB }

func (w logWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

// fastConfig shrinks the retry/backoff knobs so failure-path tests run
// in milliseconds.
func fastConfig(t testing.TB) CoordinatorConfig {
	return CoordinatorConfig{
		SolveTimeout: 5 * time.Second,
		Retries:      2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   2 * time.Millisecond,
		Logger:       testLogger(t),
	}
}

// startWorkers launches n in-process worker nodes, each a real HTTP
// server mounting the solve endpoint, and returns them with their base
// URLs. Servers close with the test.
func startWorkers(t testing.TB, n int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	urls := make([]string, n)
	for i := range workers {
		w := NewWorker(testLogger(t), 0)
		mux := http.NewServeMux()
		mux.HandleFunc("POST "+SolvePath, w.HandleSolve)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		workers[i] = w
		urls[i] = ts.URL
	}
	return workers, urls
}

// failpointTransport wraps the real transport with an injectable
// failure decision: decide runs under the mutex (so closures may keep
// counters without their own locking) and a non-nil error fails the
// request before it reaches the network.
type failpointTransport struct {
	mu     sync.Mutex
	decide func(req *http.Request) error
}

func (f *failpointTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	var err error
	if f.decide != nil {
		err = f.decide(req)
	}
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return http.DefaultTransport.RoundTrip(req)
}

func (f *failpointTransport) set(decide func(req *http.Request) error) {
	f.mu.Lock()
	f.decide = decide
	f.mu.Unlock()
}

// typoCorpus builds a tightly clustered corpus for normalized edit
// distance: every record belongs to a duplicate cluster of 4–6 typo
// variants of a long base word. Typos usually hit the tail, so the
// default prefix blocking co-blocks a cluster; ~1 in 8 hits the head,
// splitting its cluster across blocks so the boundary guard has merges
// to find. Clusters-only (no singleton noise) keeps certificate radii
// small: under a metric normalized into [0, 1], a record whose nearest
// neighbor is a random word has a growth sphere covering most of the
// corpus, which would honestly — but uselessly for this test — collapse
// the blocking to one block.
func typoCorpus(r *rand.Rand, n int) []string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	word := func() string {
		// Long words keep typo clusters tight relative to the ~0.6–0.8
		// normalized distance between unrelated words, so size-cut
		// growth spheres stay inside their own cluster.
		b := make([]byte, 14+r.Intn(6))
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	mutate := func(s string, pos int) string {
		b := []byte(s)
		switch r.Intn(3) {
		case 0: // substitute
			b[pos] = letters[r.Intn(len(letters))]
			return string(b)
		case 1: // delete
			return string(b[:pos]) + string(b[pos+1:])
		default: // insert
			return string(b[:pos]) + string(letters[r.Intn(len(letters))]) + string(b[pos:])
		}
	}
	keys := make([]string, 0, n)
	for len(keys) < n {
		base := word()
		keys = append(keys, base)
		for s := 4 + r.Intn(3); s > 0 && len(keys) < n; s-- {
			pos := 4 + r.Intn(len(base)-4) // tail edit: blocking keys agree
			if r.Intn(8) == 0 {
				pos = r.Intn(4) // head edit: cluster straddles blocks
			}
			keys = append(keys, mutate(base, pos))
		}
	}
	return keys
}

// referenceGroups is the monolithic ground truth: core.Solve over an
// exact index on the whole corpus under normalized edit distance.
func referenceGroups(t testing.TB, keys []string, prob core.Problem) [][]int {
	t.Helper()
	idx := nnindex.NewExact(keys, distance.Edit{})
	groups, _, err := core.Solve(idx, prob, core.Phase1Options{Order: core.OrderSequential})
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	return groups
}

// testProblems spans both cut families, the aggregation extensions, and
// minimal-compact post-processing, all under normalized edit distance.
func testProblems() []core.Problem {
	return []core.Problem{
		{Cut: core.Cut{MaxSize: 3}, C: 3},
		{Cut: core.Cut{MaxSize: 5}, Agg: core.AggAvg, C: 2.5},
		{Cut: core.Cut{Diameter: 0.3}, C: 3},
		{Cut: core.Cut{Diameter: 0.45}, C: 3, MinimalCompact: true},
		{Cut: core.Cut{MaxSize: 4, Diameter: 0.4}, C: 3},
	}
}

func probLabel(i int, p core.Problem) string {
	return fmt.Sprintf("prob%d[k=%d θ=%g agg=%s]", i, p.Cut.MaxSize, p.Cut.Diameter, p.Agg)
}

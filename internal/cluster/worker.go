package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fuzzydup/internal/blocked"
	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/obs"
)

// defaultCacheCap bounds the idempotency cache: solved blocks are only
// re-requested within one solve's retry window, so a shallow FIFO
// suffices — the cache is about correctness under duplication, not
// performance.
const defaultCacheCap = 256

// Worker executes remote block solves. It is the passive half of the
// cluster: a plain HTTP handler the serving layer mounts at SolvePath,
// plus drain bookkeeping so a terminating node finishes the solves it
// already accepted while rejecting new ones.
type Worker struct {
	logger   *slog.Logger
	cacheCap int

	mu    sync.Mutex
	cache map[string]*SolveResponse
	order []string // FIFO eviction over cache keys

	draining atomic.Bool
	inflight sync.WaitGroup

	// Counters for the serving layer's metric families.
	Solves    atomic.Int64 // block solves executed (cache misses)
	CacheHits atomic.Int64 // requests replayed from the idempotency cache
	Rejected  atomic.Int64 // requests refused while draining
	// SolveDuration observes worker-side solve wall clocks (ms buckets).
	SolveDuration *obs.Histogram
}

// NewWorker builds a Worker. cacheCap <= 0 selects defaultCacheCap;
// logger may be nil.
func NewWorker(logger *slog.Logger, cacheCap int) *Worker {
	if logger == nil {
		logger = slog.Default()
	}
	if cacheCap <= 0 {
		cacheCap = defaultCacheCap
	}
	return &Worker{
		logger:        logger,
		cacheCap:      cacheCap,
		cache:         make(map[string]*SolveResponse),
		SolveDuration: obs.NewHistogram(),
	}
}

// BeginDrain flips the worker into draining: subsequent solve requests
// get 503 (the coordinator reassigns their blocks), while solves already
// in flight run to completion. Idempotent.
func (w *Worker) BeginDrain() { w.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Wait blocks until every in-flight solve has finished. Call after
// BeginDrain; the HTTP server's own graceful shutdown usually covers
// this, Wait makes it explicit for embedders without one.
func (w *Worker) Wait() { w.inflight.Wait() }

// HandleSolve is the POST /v1/internal/blocks/solve handler.
func (w *Worker) HandleSolve(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		w.Rejected.Add(1)
		writeClusterError(rw, http.StatusServiceUnavailable, "draining", "worker is draining; reassign the block")
		return
	}
	w.inflight.Add(1)
	defer w.inflight.Done()

	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeClusterError(rw, http.StatusBadRequest, "bad_spec", fmt.Sprintf("invalid solve request: %v", err))
		return
	}
	if req.BlockKey == "" || len(req.Records) == 0 {
		writeClusterError(rw, http.StatusBadRequest, "bad_spec", "solve request needs a block_key and records")
		return
	}
	prob, err := req.Params.Problem()
	if err != nil {
		writeClusterError(rw, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}

	key := req.BlockKey + "|" + req.Params.fingerprint()
	w.mu.Lock()
	if resp, ok := w.cache[key]; ok {
		w.mu.Unlock()
		w.CacheHits.Add(1)
		replay := *resp
		replay.Cached = true
		writeClusterJSON(rw, http.StatusOK, &replay)
		return
	}
	w.mu.Unlock()

	metric, err := distance.ByName(req.Params.Metric, req.Records)
	if err != nil {
		writeClusterError(rw, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	var stats core.Phase1Stats
	res, err := blocked.SolveBlock(req.Records, metric, prob, core.Phase1Options{
		Ctx:   r.Context(),
		Stats: &stats,
	})
	if err != nil {
		// A cancelled request context means the coordinator gave up; any
		// status works, it is no longer listening.
		writeClusterError(rw, http.StatusInternalServerError, "solve_failed", err.Error())
		return
	}
	w.Solves.Add(1)
	w.SolveDuration.ObserveDuration(res.Dur)
	resp := &SolveResponse{
		Rel:     res.Rel,
		Groups:  res.Groups,
		Stats:   res.Stats,
		DurNs:   int64(res.Dur),
		Lookups: stats.Lookups.Load(),
		Probes:  stats.Probes.Load(),
	}
	if resp.Groups == nil {
		resp.Groups = [][]int{}
	}

	w.mu.Lock()
	if _, ok := w.cache[key]; !ok {
		w.cache[key] = resp
		w.order = append(w.order, key)
		for len(w.order) > w.cacheCap {
			delete(w.cache, w.order[0])
			w.order = w.order[1:]
		}
	}
	w.mu.Unlock()

	w.logger.Debug("block solved",
		"dataset", req.Dataset,
		"revision", req.Revision,
		"block_key", req.BlockKey,
		"records", len(req.Records),
		"duration_us", res.Dur.Microseconds())
	writeClusterJSON(rw, http.StatusOK, resp)
}

func writeClusterJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

func writeClusterError(rw http.ResponseWriter, status int, code, message string) {
	writeClusterJSON(rw, status, errorBody{Error: apiError{Status: status, Code: code, Message: message}})
}

// Registrar announces a worker to its coordinators and keeps it alive
// with heartbeats. It is worker-initiated so the coordinator needs no
// outbound probing: membership is exactly the set of nodes that can
// reach it.
type Registrar struct {
	// Client issues the registration POSTs (default: 5s-timeout client).
	Client *http.Client
	// Coordinators are the coordinator base URLs to announce to.
	Coordinators []string
	// Self is the base URL the coordinator should reach this worker at.
	Self string
	// Every is the heartbeat interval (default 1s). The coordinator's
	// liveness TTL should cover a few missed beats.
	Every  time.Duration
	Logger *slog.Logger
}

func (g *Registrar) client() *http.Client {
	if g.Client != nil {
		return g.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (g *Registrar) every() time.Duration {
	if g.Every > 0 {
		return g.Every
	}
	return time.Second
}

func (g *Registrar) logger() *slog.Logger {
	if g.Logger != nil {
		return g.Logger
	}
	return slog.Default()
}

// Run registers once and then heartbeats until ctx is cancelled. Send
// failures are logged and retried at the next tick — a coordinator that
// restarts re-learns the worker from its next beat.
func (g *Registrar) Run(ctx context.Context) {
	g.post(ctx, RegisterPath)
	t := time.NewTicker(g.every())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.post(ctx, HeartbeatPath)
		}
	}
}

// Deregister tells every coordinator this worker is leaving, so blocks
// route elsewhere immediately instead of after a liveness timeout. Call
// before the HTTP listener stops accepting (see the drain sequence in
// internal/server).
func (g *Registrar) Deregister() {
	g.post(context.Background(), DeregisterPath)
}

func (g *Registrar) post(ctx context.Context, path string) {
	body, _ := json.Marshal(map[string]string{"worker": g.Self})
	for _, coord := range g.Coordinators {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord+path, bytes.NewReader(body))
		if err != nil {
			g.logger().Warn("cluster announce failed", "coordinator", coord, "path", path, "error", err)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := g.client().Do(req)
		if err != nil {
			if ctx.Err() == nil {
				g.logger().Warn("cluster announce failed", "coordinator", coord, "path", path, "error", err)
			}
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			g.logger().Warn("cluster announce rejected", "coordinator", coord, "path", path, "status", resp.Status)
		}
	}
}

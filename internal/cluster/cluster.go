// Package cluster distributes the blocked solve pipeline across
// processes: a coordinator partitions the corpus with the usual blocking
// strategy, places each block on a worker dedupd node by consistent
// hashing, and ships the block's records over HTTP
// (POST /v1/internal/blocks/solve) to be solved remotely. The boundary
// guard, merge loop, and reconciliation all stay on the coordinator —
// internal/blocked runs unchanged with its per-block solve swapped for a
// remote call — so the distributed result is bit-for-bit the partition
// core.Solve produces on the whole corpus (DESIGN.md §8 and §11).
//
// The exactness argument is structural: a worker executes
// blocked.SolveBlock, the same function the local pipeline calls for
// every block, on the same records in the same (ascending global ID)
// order, and every number that crosses the wire — neighbor distances,
// growth counts, group members — round-trips exactly (encoding/json
// emits the shortest float64 representation that parses back to the same
// bits). What the guard certifies locally it therefore certifies
// identically for remote results.
//
// Failure handling never trades exactness for availability: a block
// whose worker dies is reassigned to the next owner on the hash ring
// (bounded retries with exponential backoff and jitter first), and when
// no worker is reachable the coordinator solves the block itself. Remote
// solves are idempotent — a block is keyed by its dataset, revision, and
// member set, so a retried or reassigned-and-then-duplicated request
// returns the cached result instead of recomputing.
//
// Only corpus-independent metrics are admissible: an IDF-weighted metric
// (fms, cosine, soft-tfidf) computed over one block's records would
// differ from the corpus-wide weighting, silently changing distances.
// Params.Problem rejects them, as does the job-spec validation above.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"fuzzydup/internal/core"
)

// SolvePath is the worker endpoint a coordinator POSTs block solves to.
const SolvePath = "/v1/internal/blocks/solve"

// Paths of the coordinator's membership endpoints. Register and
// heartbeat are interchangeable (a heartbeat from an unknown worker
// registers it); deregister removes the worker immediately, which is how
// a draining node hands its future blocks back.
const (
	RegisterPath   = "/v1/internal/cluster/register"
	HeartbeatPath  = "/v1/internal/cluster/heartbeat"
	DeregisterPath = "/v1/internal/cluster/deregister"
	WorkersPath    = "/v1/internal/cluster/workers"
)

// Dataset identifies the exact corpus snapshot a distributed solve runs
// against. The revision pins block keys to one mutation state: the same
// member set at a different revision is a different block, so stale
// cached results can never serve a newer corpus.
type Dataset struct {
	ID       string
	Revision int64
}

// Params is the wire form of a solve's parameterization: the metric by
// registry name and the core.Problem fields, with the aggregation as its
// string name. It deliberately carries no closures (Problem.Exclude
// cannot be shipped) and only admits corpus-independent metrics.
type Params struct {
	Metric         string  `json:"metric"`
	MaxSize        int     `json:"max_size,omitempty"`
	Diameter       float64 `json:"diameter,omitempty"`
	Agg            string  `json:"agg"`
	C              float64 `json:"c"`
	P              float64 `json:"p,omitempty"`
	MinimalCompact bool    `json:"minimal_compact,omitempty"`
}

// ParamsFor captures a problem (and the metric's registry name) for the
// wire. The caller guarantees prob has no Exclude predicate; blocked.Solve
// enforces it for the distributed path.
func ParamsFor(metric string, prob core.Problem) Params {
	return Params{
		Metric:         metric,
		MaxSize:        prob.Cut.MaxSize,
		Diameter:       prob.Cut.Diameter,
		Agg:            prob.Agg.String(),
		C:              prob.C,
		P:              prob.P,
		MinimalCompact: prob.MinimalCompact,
	}
}

// ParseAgg resolves an aggregation's wire name ("" selects max, the
// system default).
func ParseAgg(name string) (core.Agg, error) {
	switch name {
	case "", "max":
		return core.AggMax, nil
	case "avg":
		return core.AggAvg, nil
	case "max2":
		return core.AggMax2, nil
	}
	return 0, fmt.Errorf("cluster: unknown aggregation %q", name)
}

// CorpusDependent reports whether the named metric derives weights from
// the corpus it is constructed over. Such metrics cannot be solved
// block-locally: a block's IDF table differs from the corpus-wide one,
// so remote distances would diverge from a monolithic solve.
func CorpusDependent(metric string) bool {
	switch metric {
	case "fms", "cosine", "soft-tfidf":
		return true
	}
	return false
}

// Problem reconstructs the core problem, validating the parameters and
// rejecting corpus-dependent metrics.
func (p Params) Problem() (core.Problem, error) {
	if CorpusDependent(p.Metric) {
		return core.Problem{}, fmt.Errorf("cluster: metric %q is corpus-dependent and cannot be solved block-locally", p.Metric)
	}
	agg, err := ParseAgg(p.Agg)
	if err != nil {
		return core.Problem{}, err
	}
	prob := core.Problem{
		Cut:            core.Cut{MaxSize: p.MaxSize, Diameter: p.Diameter},
		Agg:            agg,
		C:              p.C,
		P:              p.P,
		MinimalCompact: p.MinimalCompact,
	}
	if err := prob.Validate(); err != nil {
		return core.Problem{}, err
	}
	return prob, nil
}

// fingerprint is the cache-key suffix distinguishing solves of the same
// block under different parameters.
func (p Params) fingerprint() string {
	return fmt.Sprintf("%s|%d|%g|%s|%g|%g|%t", p.Metric, p.MaxSize, p.Diameter, p.Agg, p.C, p.P, p.MinimalCompact)
}

// SolveRequest is the body of POST /v1/internal/blocks/solve: one
// block's records in ascending global-ID order plus everything needed to
// solve them exactly. BlockKey is the idempotency token — dataset,
// revision, and member set hashed together — so retries and reassignment
// duplicates are answered from the worker's cache.
type SolveRequest struct {
	Dataset  string   `json:"dataset"`
	Revision int64    `json:"revision"`
	BlockKey string   `json:"block_key"`
	Params   Params   `json:"params"`
	Records  []string `json:"records"`
}

// SolveResponse is one solved block in local coordinates, exactly a
// blocked.BlockResult plus instrumentation. All fields round-trip JSON
// bit-for-bit (float64s marshal at shortest-exact precision).
type SolveResponse struct {
	Rel    *core.NNRelation    `json:"rel"`
	Groups [][]int             `json:"groups"`
	Stats  core.PartitionStats `json:"stats"`
	// DurNs is the worker-side solve wall clock in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Cached reports the response was replayed from the idempotency
	// cache rather than recomputed.
	Cached bool `json:"cached,omitempty"`
	// Lookups and Probes are the solve's phase-1 counters, folded into
	// the coordinator's stats so distributed runs report true totals.
	Lookups int64 `json:"lookups"`
	Probes  int64 `json:"probes"`
}

// errorBody mirrors the server's structured error shape so cluster
// responses read like every other dedupd error.
type errorBody struct {
	Error apiError `json:"error"`
}

type apiError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BlockKey derives the idempotency key of a block: FNV-64a over the
// dataset ID, its revision, and the ascending member IDs. Two requests
// carry the same key iff they describe the same records of the same
// corpus state, which is exactly when replaying a cached solve is sound.
func BlockKey(ds Dataset, members []int) string {
	h := fnv.New64a()
	h.Write([]byte(ds.ID))
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutVarint(buf[:], ds.Revision)])
	for _, m := range members {
		h.Write(buf[:binary.PutVarint(buf[:], int64(m))])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashKey maps a block key onto the ring's keyspace. The mix64
// finalizer matters here too: block keys are short hex strings, the
// regime where raw FNV clusters (see ring.go).
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// WorkerStatus is one row of GET /v1/internal/cluster/workers: the
// worker's identity (its advertised base URL), liveness, and how much
// work the coordinator has routed to it.
type WorkerStatus struct {
	Worker string `json:"worker"`
	Alive  bool   `json:"alive"`
	// Static marks a worker seeded from -peers rather than registered by
	// a heartbeat; it is trusted alive until it fails or starts beating.
	Static bool `json:"static"`
	// LastBeatAgeSeconds is the age of the last heartbeat, -1 if the
	// worker has never heartbeated (static seeds before their first beat).
	LastBeatAgeSeconds float64 `json:"last_beat_age_seconds"`
	BlocksSolved       int64   `json:"blocks_solved"`
}

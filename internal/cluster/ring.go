package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Consistent-hash placement. Every worker contributes vnodes points on a
// uint64 ring; a block lands on the first point clockwise of its key's
// hash. The walk order from that point — distinct workers in ring order —
// is the block's failover sequence: placement of every other block is
// untouched when one worker dies, and a given block's reassignment target
// is deterministic, which keeps retried and reassigned solves idempotent.

// defaultVNodes balances placement smoothness against ring size; at 64
// points per worker the max/min block share across 4 workers stays within
// a few tens of percent, plenty for block-granular work.
const defaultVNodes = 64

type ringPoint struct {
	hash uint64
	id   string
}

// mix64 finalizes a raw FNV sum before it is used as a ring position.
// FNV's multiplicative step spreads a trailing-byte change across only
// ~2^40 of the output space, so short keys sharing a prefix — exactly
// what vnode labels and block keys are — land within 2^-24 of each
// other on the ring, destroying placement balance. The splitmix64
// finalizer avalanches every input bit across all 64 output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ring struct {
	points []ringPoint
}

// buildRing places vnodes points per worker id. Hash collisions between
// points are broken by id so the ring is deterministic regardless of
// membership insertion order.
func buildRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(id))
			h.Write([]byte("#"))
			h.Write([]byte(strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// walk returns the distinct worker ids in ring order starting from the
// first point at or clockwise of key — the primary owner first, then the
// failover sequence.
func (r *ring) walk(key uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fuzzydup/internal/blocked"
	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/obs"
)

// CoordinatorConfig tunes the active half of the cluster. The zero value
// selects sensible defaults throughout.
type CoordinatorConfig struct {
	// Client issues block-solve and scrape requests (default: a plain
	// http.Client; per-attempt deadlines come from SolveTimeout). Tests
	// inject failpoint transports here.
	Client *http.Client
	// SolveTimeout bounds one remote solve attempt (default 30s).
	SolveTimeout time.Duration
	// Retries is the attempt budget per worker before the block is
	// reassigned (default 3, i.e. two retries after the first attempt).
	Retries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries: base·2^(try−1), capped at max, scaled by a jitter factor
	// uniform in [0.5, 1.5). Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HeartbeatTTL is the liveness window: a worker whose last heartbeat
	// is older is skipped for placement (default 3s, three missed beats
	// at the default interval).
	HeartbeatTTL time.Duration
	// VNodes is the consistent-hash points per worker (default 64).
	VNodes int
	// ScrapeTimeout bounds one worker metrics scrape during a cluster
	// roll-up (default 2s).
	ScrapeTimeout time.Duration
	Logger        *slog.Logger

	// now and jitter are injectable for tests.
	now    func() time.Time
	jitter func() float64
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 3 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	return c
}

// member is one known worker.
type member struct {
	id     string
	static bool // seeded from -peers rather than registered by a beat
	// lastBeat is the most recent heartbeat (zero if the worker has never
	// beaten — possible only for static seeds, which are trusted alive
	// until they fail or start beating).
	lastBeat time.Time
	// dead marks a worker whose solve attempts exhausted their retry
	// budget; cleared by the next heartbeat.
	dead bool
}

func (m *member) alive(now time.Time, ttl time.Duration) bool {
	if m.dead {
		return false
	}
	if m.lastBeat.IsZero() {
		return m.static
	}
	return now.Sub(m.lastBeat) <= ttl
}

// workerCounters is the coordinator's per-worker instrumentation; it
// outlives deregistration so counters never reset mid-scrape-interval.
type workerCounters struct {
	blocksSolved atomic.Int64
	solveDur     *obs.Histogram // coordinator-observed round trip, ms
}

// Coordinator owns cluster membership and drives distributed solves: it
// runs the blocked pipeline locally with the per-block solve redirected
// to workers (placement by consistent hashing, bounded retries with
// backoff and jitter, reassignment on worker death, local fallback when
// no worker is reachable). See the package comment for why this is exact.
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	members map[string]*member
	version int // bumped on membership set changes; invalidates the ring
	ring    *ring
	ringVer int
	stats   map[string]*workerCounters

	// BlocksReassigned counts failover hops: a block moving off a worker
	// that exhausted its retry budget (including moves onto the
	// coordinator's local fallback). RemoteErrors counts those exhausted
	// budgets; LocalFallbacks counts blocks the coordinator solved itself
	// because no worker was reachable.
	BlocksReassigned atomic.Int64
	RemoteErrors     atomic.Int64
	LocalFallbacks   atomic.Int64
}

// NewCoordinator builds a Coordinator with no members; seed static
// workers with AddPeer and let the rest register themselves.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		stats:   make(map[string]*workerCounters),
	}
}

// AddPeer seeds a static worker (from -peers): trusted alive until it
// fails a solve or starts heartbeating (after which the TTL governs).
func (c *Coordinator) AddPeer(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[id]; !ok {
		c.members[id] = &member{id: id, static: true}
		c.version++
	}
}

// Register adds (or revives) a worker from its registration beat.
func (c *Coordinator) Register(id string) { c.beat(id) }

// Heartbeat refreshes a worker's liveness; unknown workers register.
func (c *Coordinator) Heartbeat(id string) { c.beat(id) }

func (c *Coordinator) beat(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id}
		c.members[id] = m
		c.version++
		c.cfg.Logger.Info("cluster worker registered", "worker", id)
	}
	wasDead := m.dead
	m.lastBeat = c.cfg.now()
	m.dead = false
	if wasDead {
		c.cfg.Logger.Info("cluster worker revived", "worker", id)
	}
}

// DeregisterWorker removes a worker immediately — the draining node's
// goodbye. Future blocks place elsewhere without waiting out the TTL.
func (c *Coordinator) DeregisterWorker(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[id]; ok {
		delete(c.members, id)
		c.version++
		c.cfg.Logger.Info("cluster worker deregistered", "worker", id)
	}
}

// markDead benches a worker whose solve attempts exhausted the retry
// budget until its next heartbeat.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[id]; ok && !m.dead {
		m.dead = true
		c.cfg.Logger.Warn("cluster worker marked dead", "worker", id)
	}
}

// owners returns the alive workers in the block's failover order: the
// ring walk from the key, dead and timed-out members skipped. The ring
// spans all known members so one death never moves other blocks.
func (c *Coordinator) owners(key uint64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil || c.ringVer != c.version {
		ids := make([]string, 0, len(c.members))
		for id := range c.members {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		c.ring = buildRing(ids, c.cfg.VNodes)
		c.ringVer = c.version
	}
	now := c.cfg.now()
	var out []string
	for _, id := range c.ring.walk(key) {
		if m, ok := c.members[id]; ok && m.alive(now, c.cfg.HeartbeatTTL) {
			out = append(out, id)
		}
	}
	return out
}

// WorkersAlive counts members currently eligible for placement.
func (c *Coordinator) WorkersAlive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	n := 0
	for _, m := range c.members {
		if m.alive(now, c.cfg.HeartbeatTTL) {
			n++
		}
	}
	return n
}

// Workers reports every known member, sorted by id.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	out := make([]WorkerStatus, 0, len(c.members))
	for _, m := range c.members {
		ws := WorkerStatus{
			Worker:             m.id,
			Alive:              m.alive(now, c.cfg.HeartbeatTTL),
			Static:             m.static,
			LastBeatAgeSeconds: -1,
		}
		if !m.lastBeat.IsZero() {
			ws.LastBeatAgeSeconds = now.Sub(m.lastBeat).Seconds()
		}
		if st := c.stats[m.id]; st != nil {
			ws.BlocksSolved = st.blocksSolved.Load()
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// counters returns (creating if needed) a worker's instrumentation.
func (c *Coordinator) counters(id string) *workerCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stats[id]
	if !ok {
		st = &workerCounters{solveDur: obs.NewHistogram()}
		c.stats[id] = st
	}
	return st
}

// Solve runs one distributed solve: the blocked pipeline executes
// locally (seeding, canopy, guard, merge, reconcile) with every dirty
// block handed to c's workers. metricName must resolve to metric via
// distance.ByName and be corpus-independent. The result is bit-for-bit
// what core.Solve computes over keys — see the package comment.
func (c *Coordinator) Solve(ctx context.Context, ds Dataset, keys []string, metric distance.Metric, metricName string, prob core.Problem, strat blocked.Strategy, opts blocked.Options) (*blocked.Result, error) {
	if CorpusDependent(metricName) {
		return nil, fmt.Errorf("cluster: metric %q is corpus-dependent and cannot be distributed", metricName)
	}
	params := ParamsFor(metricName, prob)
	stats := opts.Stats
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	opts.Solver = func(sctx context.Context, members []int) (*blocked.BlockResult, error) {
		return c.solveBlock(sctx, ds, keys, params, prob, metric, members, stats)
	}
	return blocked.Solve(keys, metric, prob, strat, opts)
}

// solveBlock places one block and runs the retry/reassign/fallback
// ladder. Identical inputs always produce the identical BlockResult no
// matter which rung answers: every rung executes blocked.SolveBlock on
// the same records (remotely or locally), and the idempotency key makes
// duplicated work converge on one cached answer.
func (c *Coordinator) solveBlock(ctx context.Context, ds Dataset, keys []string, params Params, prob core.Problem, metric distance.Metric, members []int, stats *core.Phase1Stats) (*blocked.BlockResult, error) {
	key := BlockKey(ds, members)
	records := make([]string, len(members))
	for i, id := range members {
		records[i] = keys[id]
	}
	body, err := json.Marshal(SolveRequest{
		Dataset:  ds.ID,
		Revision: ds.Revision,
		BlockKey: key,
		Params:   params,
		Records:  records,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding block %s: %w", key, err)
	}

	owners := c.owners(hashKey(key))
	for hop, worker := range owners {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		resp, err := c.attempt(ctx, worker, body)
		if err == nil {
			st := c.counters(worker)
			st.blocksSolved.Add(1)
			st.solveDur.ObserveDuration(time.Since(t0))
			if stats != nil {
				stats.Lookups.Add(resp.Lookups)
				stats.Probes.Add(resp.Probes)
			}
			if hop > 0 {
				c.cfg.Logger.Info("block reassigned",
					"block_key", key, "worker", worker, "hops", hop)
			}
			return &blocked.BlockResult{
				Rel:    resp.Rel,
				Groups: resp.Groups,
				Stats:  resp.Stats,
				Dur:    time.Duration(resp.DurNs),
			}, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, fmt.Errorf("cluster: worker %s rejected block %s: %w", worker, key, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		c.markDead(worker)
		c.RemoteErrors.Add(1)
		c.BlocksReassigned.Add(1)
		c.cfg.Logger.Warn("remote block solve failed; reassigning",
			"block_key", key, "worker", worker, "error", err)
	}

	// No worker left: the coordinator is the failover of last resort.
	// Same SolveBlock, same records, same answer — availability without
	// touching exactness.
	c.LocalFallbacks.Add(1)
	res, err := blocked.SolveBlock(records, metric, prob, core.Phase1Options{Ctx: ctx, Stats: stats})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// permanentError marks a worker response that retrying or reassigning
// cannot fix (HTTP 400: the request itself is malformed — version skew).
type permanentError struct {
	status  int
	message string
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.status, e.message)
}

// attempt runs the bounded retry loop against one worker: Retries
// attempts, exponential backoff with jitter between them.
func (c *Coordinator) attempt(ctx context.Context, worker string, body []byte) (*SolveResponse, error) {
	var lastErr error
	for try := 0; try < c.cfg.Retries; try++ {
		if try > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.backoff(try)):
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.SolveTimeout)
		resp, err := c.post(actx, worker, body)
		cancel()
		if err == nil {
			return resp, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// backoff computes the pre-try delay: base·2^(try−1) capped at max,
// scaled by jitter uniform in [0.5, 1.5) so synchronized retries from
// concurrent block solves spread out.
func (c *Coordinator) backoff(try int) time.Duration {
	d := c.cfg.BackoffBase << (try - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	return time.Duration(float64(d) * (0.5 + c.cfg.jitter()))
}

// post issues one solve request. 400s are permanent; any other failure
// (network error, 5xx, 503-draining) is retryable.
func (c *Coordinator) post(ctx context.Context, worker string, body []byte) (*SolveResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+SolvePath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error.Message != "" {
			msg = eb.Error.Message
		}
		if resp.StatusCode == http.StatusBadRequest {
			return nil, &permanentError{status: resp.StatusCode, message: msg}
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding solve response: %w", err)
	}
	if sr.Rel == nil {
		return nil, fmt.Errorf("solve response has no relation")
	}
	return &sr, nil
}

// registrationBody is the JSON body of the membership endpoints.
type registrationBody struct {
	Worker string `json:"worker"`
}

func decodeWorker(r *http.Request) (string, error) {
	var b registrationBody
	if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
		return "", fmt.Errorf("invalid body: %w", err)
	}
	if b.Worker == "" {
		return "", fmt.Errorf("missing worker URL")
	}
	return b.Worker, nil
}

// HandleRegister is the POST /v1/internal/cluster/register handler.
func (c *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	c.handleBeat(w, r, c.Register)
}

// HandleHeartbeat is the POST /v1/internal/cluster/heartbeat handler.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	c.handleBeat(w, r, c.Heartbeat)
}

// HandleDeregister is the POST /v1/internal/cluster/deregister handler.
func (c *Coordinator) HandleDeregister(w http.ResponseWriter, r *http.Request) {
	c.handleBeat(w, r, c.DeregisterWorker)
}

func (c *Coordinator) handleBeat(w http.ResponseWriter, r *http.Request, f func(string)) {
	id, err := decodeWorker(r)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	f(id)
	writeClusterJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// HandleWorkers is the GET /v1/internal/cluster/workers handler.
func (c *Coordinator) HandleWorkers(w http.ResponseWriter, r *http.Request) {
	writeClusterJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}

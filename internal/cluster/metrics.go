package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"

	"fuzzydup/internal/obs/promtext"
)

// Cluster-aware metrics roll-up. The coordinator exports two layers:
//
//   - Its own view of the cluster (WriteCoordinatorFamilies): worker
//     liveness, per-worker blocks solved, coordinator-observed remote
//     solve round trips, reassignment and fallback counters. Label
//     cardinality is bounded by cluster membership.
//   - An aggregation of the workers' own expositions (WriteRollup): at
//     scrape time the coordinator fetches every alive worker's
//     /metrics?format=prometheus, parses it with the strict promtext
//     linter, and re-exports an allowlisted set of families summed
//     across workers under the dedupd_cluster_agg_ prefix. One scrape of
//     the coordinator thus answers for the fleet.

// rollupFamilies is the allowlist of worker families aggregated by
// WriteRollup, each summed over all samples of all scraped workers.
var rollupFamilies = []struct {
	name string
	typ  string // "counter" or "gauge"
	help string
}{
	{"dedupd_http_requests_total", "counter", "Requests served, summed across workers and endpoints."},
	{"dedupd_worker_block_solves_total", "counter", "Remote block solves executed, summed across workers."},
	{"dedupd_worker_block_cache_hits_total", "counter", "Idempotent block-solve replays, summed across workers."},
	{"dedupd_distance_calls_total", "counter", "Metric invocations, summed across workers."},
	{"dedupd_go_goroutines", "gauge", "Goroutines, summed across workers."},
	{"dedupd_go_heap_alloc_bytes", "gauge", "Allocated heap bytes, summed across workers."},
}

// WriteCoordinatorFamilies renders the coordinator's own cluster
// families into an exposition writer.
func (c *Coordinator) WriteCoordinatorFamilies(pw *promtext.Writer) {
	workers := c.Workers()

	pw.Gauge("dedupd_cluster_workers_alive",
		"Workers currently eligible for block placement.",
		promtext.Sample{Value: float64(c.WorkersAlive())})
	pw.Counter("dedupd_cluster_blocks_reassigned_total",
		"Failover hops: blocks moved off a worker that exhausted its retry budget.",
		promtext.Sample{Value: float64(c.BlocksReassigned.Load())})
	pw.Counter("dedupd_cluster_remote_solve_errors_total",
		"Per-worker retry budgets exhausted by remote block solves.",
		promtext.Sample{Value: float64(c.RemoteErrors.Load())})
	pw.Counter("dedupd_cluster_local_fallbacks_total",
		"Blocks the coordinator solved itself because no worker was reachable.",
		promtext.Sample{Value: float64(c.LocalFallbacks.Load())})

	alive := make([]promtext.Sample, len(workers))
	solved := make([]promtext.Sample, len(workers))
	for i, w := range workers {
		labels := []promtext.Label{{Name: "worker", Value: w.Worker}}
		v := 0.0
		if w.Alive {
			v = 1
		}
		alive[i] = promtext.Sample{Labels: labels, Value: v}
		solved[i] = promtext.Sample{Labels: labels, Value: float64(w.BlocksSolved)}
	}
	pw.Gauge("dedupd_cluster_worker_alive",
		"Per-worker liveness (1 alive, 0 dead or timed out).", alive...)
	pw.Counter("dedupd_cluster_worker_blocks_solved_total",
		"Blocks solved per worker, as routed by this coordinator.", solved...)

	c.mu.Lock()
	ids := make([]string, 0, len(c.stats))
	for id := range c.stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	hists := make([]promtext.HistogramSample, len(ids))
	for i, id := range ids {
		hists[i] = promtext.HistogramSample{
			Labels:   []promtext.Label{{Name: "worker", Value: id}},
			Snapshot: c.stats[id].solveDur.Snapshot(),
		}
	}
	c.mu.Unlock()
	pw.Histogram("dedupd_cluster_remote_block_solve_duration_ms",
		"Coordinator-observed remote block solve round trips per worker.", hists...)
}

// WriteRollup scrapes every alive worker's Prometheus exposition
// (concurrently, each bounded by ScrapeTimeout) and re-exports the
// allowlisted families summed across the fleet. Unreachable or
// unparseable workers are skipped and counted in
// dedupd_cluster_workers_scrape_failed.
func (c *Coordinator) WriteRollup(ctx context.Context, pw *promtext.Writer) {
	var targets []string
	for _, w := range c.Workers() {
		if w.Alive {
			targets = append(targets, w.Worker)
		}
	}

	sums := make(map[string]float64, len(rollupFamilies))
	var (
		mu       sync.Mutex
		scraped  int
		failed   int
		wg       sync.WaitGroup
		allowSet = make(map[string]bool, len(rollupFamilies))
	)
	for _, f := range rollupFamilies {
		allowSet[f.name] = true
	}
	for _, target := range targets {
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			fams, err := c.scrapeWorker(ctx, target)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				c.cfg.Logger.Warn("worker metrics scrape failed", "worker", target, "error", err)
				return
			}
			scraped++
			for _, fam := range fams {
				if !allowSet[fam.Name] {
					continue
				}
				for _, s := range fam.Samples {
					if s.Name != fam.Name {
						continue // skip _bucket/_count/_sum of histograms
					}
					sums[fam.Name] += s.Value
				}
			}
		}(target)
	}
	wg.Wait()

	pw.Gauge("dedupd_cluster_workers_scraped",
		"Workers whose expositions the last roll-up aggregated.",
		promtext.Sample{Value: float64(scraped)})
	pw.Gauge("dedupd_cluster_workers_scrape_failed",
		"Alive workers the last roll-up could not scrape.",
		promtext.Sample{Value: float64(failed)})
	for _, f := range rollupFamilies {
		name := "dedupd_cluster_agg_" + f.name[len("dedupd_"):]
		sample := promtext.Sample{Value: sums[f.name]}
		if f.typ == "gauge" {
			pw.Gauge(name, f.help, sample)
		} else {
			pw.Counter(name, f.help, sample)
		}
	}
}

// scrapeWorker fetches and strictly parses one worker's exposition.
func (c *Coordinator) scrapeWorker(ctx context.Context, worker string) ([]promtext.Family, error) {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, worker+"/metrics?format=prometheus", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &permanentError{status: resp.StatusCode, message: resp.Status}
	}
	return promtext.Parse(resp.Body)
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock drives the coordinator's liveness window from the test.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func clockedCoordinator(t *testing.T) (*Coordinator, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg := fastConfig(t)
	cfg.now = clk.now
	return NewCoordinator(cfg), clk
}

func TestMembershipLifecycle(t *testing.T) {
	c, clk := clockedCoordinator(t)

	// A static peer is trusted alive before its first beat.
	c.AddPeer("http://w1")
	if got := c.WorkersAlive(); got != 1 {
		t.Fatalf("static peer not alive: WorkersAlive = %d", got)
	}
	ws := c.Workers()
	if len(ws) != 1 || !ws[0].Static || !ws[0].Alive || ws[0].LastBeatAgeSeconds != -1 {
		t.Fatalf("static peer status = %+v", ws[0])
	}
	// AddPeer is idempotent and never resurrects a registered member.
	c.AddPeer("http://w1")
	if len(c.Workers()) != 1 {
		t.Fatal("duplicate AddPeer grew the member set")
	}

	// A dynamic worker registers, stays alive within the TTL, and times
	// out after it.
	c.Register("http://w2")
	if got := c.WorkersAlive(); got != 2 {
		t.Fatalf("WorkersAlive = %d after register, want 2", got)
	}
	clk.advance(2 * time.Second)
	if got := c.WorkersAlive(); got != 2 {
		t.Fatalf("WorkersAlive = %d within TTL, want 2", got)
	}
	clk.advance(2 * time.Second) // 4s > 3s TTL
	if got := c.WorkersAlive(); got != 1 {
		t.Fatalf("WorkersAlive = %d after TTL, want 1 (the static peer)", got)
	}
	// A fresh heartbeat revives it.
	c.Heartbeat("http://w2")
	if got := c.WorkersAlive(); got != 2 {
		t.Fatalf("WorkersAlive = %d after revival beat, want 2", got)
	}

	// Once a static peer starts beating, the TTL governs it too.
	c.Heartbeat("http://w1")
	clk.advance(4 * time.Second)
	if got := c.WorkersAlive(); got != 0 {
		t.Fatalf("WorkersAlive = %d after both timed out, want 0", got)
	}

	// markDead benches a member until its next beat.
	c.Heartbeat("http://w2")
	c.markDead("http://w2")
	if got := c.WorkersAlive(); got != 0 {
		t.Fatalf("dead worker still counted alive: %d", got)
	}
	c.Heartbeat("http://w2")
	if got := c.WorkersAlive(); got != 1 {
		t.Fatalf("beat did not revive dead worker: %d", got)
	}

	// Deregistration removes the member outright.
	c.DeregisterWorker("http://w2")
	c.DeregisterWorker("http://nope") // unknown: no-op
	if got := len(c.Workers()); got != 1 {
		t.Fatalf("%d members after deregister, want 1", got)
	}
}

func TestMembershipChangesInvalidateRing(t *testing.T) {
	c, _ := clockedCoordinator(t)
	c.AddPeer("http://w1")
	key := hashKey("some-block")
	if got := c.owners(key); len(got) != 1 || got[0] != "http://w1" {
		t.Fatalf("owners = %v", got)
	}
	c.Register("http://w2")
	if got := c.owners(key); len(got) != 2 {
		t.Fatalf("owners after join = %v, want both workers", got)
	}
	c.DeregisterWorker("http://w1")
	if got := c.owners(key); len(got) != 1 || got[0] != "http://w2" {
		t.Fatalf("owners after leave = %v", got)
	}
}

func TestMembershipHandlers(t *testing.T) {
	c, clk := clockedCoordinator(t)
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RegisterPath, c.HandleRegister)
	mux.HandleFunc("POST "+HeartbeatPath, c.HandleHeartbeat)
	mux.HandleFunc("POST "+DeregisterPath, c.HandleDeregister)
	mux.HandleFunc("GET "+WorkersPath, c.HandleWorkers)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(RegisterPath, `{"worker":"http://w1"}`); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := post(HeartbeatPath, `{"worker":"http://w2"}`); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d", code)
	}
	for _, bad := range []string{``, `{}`, `{"worker":""}`, `not json`} {
		if code := post(RegisterPath, bad); code != http.StatusBadRequest {
			t.Errorf("register %q: status %d, want 400", bad, code)
		}
	}

	clk.advance(time.Second)
	resp, err := http.Get(ts.URL + WorkersPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Workers []WorkerStatus `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2 entries", body.Workers)
	}
	for _, w := range body.Workers {
		if !w.Alive || w.Static || w.LastBeatAgeSeconds != 1 {
			t.Errorf("worker status = %+v", w)
		}
	}

	if code := post(DeregisterPath, `{"worker":"http://w1"}`); code != http.StatusOK {
		t.Fatalf("deregister: status %d", code)
	}
	if got := len(c.Workers()); got != 1 {
		t.Fatalf("%d workers after deregister, want 1", got)
	}
}

func TestBackoffShape(t *testing.T) {
	cfg := fastConfig(t)
	cfg.BackoffBase = 100 * time.Millisecond
	cfg.BackoffMax = time.Second
	cfg.jitter = func() float64 { return 0.5 } // jitter factor exactly 1.0
	c := NewCoordinator(cfg)
	for _, tc := range []struct {
		try  int
		want time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second},  // capped
		{40, time.Second}, // shift overflow saturates at the cap
	} {
		if got := c.backoff(tc.try); got != tc.want {
			t.Errorf("backoff(%d) = %v, want %v", tc.try, got, tc.want)
		}
	}

	// Jitter scales the delay within [0.5, 1.5).
	cfg.jitter = func() float64 { return 0.999 }
	c = NewCoordinator(cfg)
	if got := c.backoff(1); got < 149*time.Millisecond || got > 150*time.Millisecond {
		t.Errorf("jittered backoff(1) = %v, want ≈149.9ms", got)
	}
}

func TestPostErrorClassification(t *testing.T) {
	// A 400 from a worker is permanent: retrying identical bytes cannot
	// succeed, so the ladder must not burn its budget or mark the worker
	// dead for it.
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		writeClusterError(w, http.StatusBadRequest, "bad_spec", "no such metric")
	}))
	defer ts.Close()

	c := NewCoordinator(fastConfig(t))
	_, err := c.attempt(context.Background(), ts.URL, []byte(`{}`))
	var perm *permanentError
	if !errors.As(err, &perm) {
		t.Fatalf("400 classified as %v, want permanentError", err)
	}
	if perm.status != http.StatusBadRequest || perm.message != "no such metric" {
		t.Errorf("permanent error = %+v", perm)
	}
	if perm.Error() == "" {
		t.Error("empty error string")
	}
	if calls != 1 {
		t.Errorf("400 was retried %d times", calls)
	}

	// A 500 is retryable: the full attempt budget is spent.
	calls = 0
	ts5 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		writeClusterError(w, http.StatusInternalServerError, "solve_failed", "boom")
	}))
	defer ts5.Close()
	if _, err := c.attempt(context.Background(), ts5.URL, []byte(`{}`)); err == nil {
		t.Fatal("500 reported success")
	}
	if calls != c.cfg.Retries {
		t.Errorf("500 attempted %d times, want %d", calls, c.cfg.Retries)
	}

	// Malformed success bodies are errors, not empty results.
	for name, handler := range map[string]http.HandlerFunc{
		"not json": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("not json"))
		},
		"no relation": func(w http.ResponseWriter, r *http.Request) {
			writeClusterJSON(w, http.StatusOK, map[string]any{"groups": [][]int{}})
		},
	} {
		ts := httptest.NewServer(handler)
		if _, err := c.post(context.Background(), ts.URL, []byte(`{}`)); err == nil {
			t.Errorf("%s: decode reported success", name)
		}
		ts.Close()
	}
}

package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"fuzzydup/internal/obs/promtext"
)

// renderFamilies runs a write func through the exposition writer and the
// strict parser, returning sample values keyed "name{labels}".
func renderFamilies(t *testing.T, write func(pw *promtext.Writer)) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	pw := promtext.NewWriter(&buf)
	write(pw)
	if err := pw.Err(); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("coordinator exposition does not parse: %v\n%s", err, buf.String())
	}
	values := map[string]float64{}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			key := s.Name
			if len(s.Labels) > 0 {
				parts := make([]string, 0, len(s.Labels))
				for name, value := range s.Labels {
					if name == "le" {
						continue // bucket samples collapse; tests read _count/_sum
					}
					parts = append(parts, name+"="+value)
				}
				sort.Strings(parts)
				key += "{" + strings.Join(parts, ",") + "}"
			}
			values[key] = s.Value
		}
	}
	return values
}

func TestWriteCoordinatorFamilies(t *testing.T) {
	_, urls := startWorkers(t, 2)
	keys := typoCorpus(rand.New(rand.NewSource(77)), 60)
	c := NewCoordinator(fastConfig(t))
	for _, u := range urls {
		c.AddPeer(u)
	}
	prob := testProblems()[0]
	distSolve(t, c, Dataset{ID: "mx", Revision: 1}, keys, prob, "metrics run")

	vals := renderFamilies(t, c.WriteCoordinatorFamilies)
	if vals["dedupd_cluster_workers_alive"] != 2 {
		t.Errorf("workers_alive = %v, want 2", vals["dedupd_cluster_workers_alive"])
	}
	if vals["dedupd_cluster_local_fallbacks_total"] != 0 {
		t.Errorf("local_fallbacks = %v on a healthy run", vals["dedupd_cluster_local_fallbacks_total"])
	}
	var solvedTotal, durCount float64
	for _, u := range urls {
		if vals[fmt.Sprintf("dedupd_cluster_worker_alive{worker=%s}", u)] != 1 {
			t.Errorf("worker %s not reported alive", u)
		}
		solvedTotal += vals[fmt.Sprintf("dedupd_cluster_worker_blocks_solved_total{worker=%s}", u)]
		durCount += vals[fmt.Sprintf("dedupd_cluster_remote_block_solve_duration_ms_count{worker=%s}", u)]
	}
	if solvedTotal == 0 {
		t.Error("no per-worker blocks_solved samples")
	}
	if durCount != solvedTotal {
		t.Errorf("remote solve histogram count %v != blocks solved %v", durCount, solvedTotal)
	}
}

// fakeExposition serves a minimal worker /metrics exposition with the
// given solve counter value, plus a family outside the allowlist that
// the roll-up must ignore.
func fakeExposition(solves float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		pw := promtext.NewWriter(&buf)
		pw.Counter("dedupd_worker_block_solves_total", "solves", promtext.Sample{Value: solves})
		pw.Counter("dedupd_worker_block_cache_hits_total", "hits", promtext.Sample{Value: 1})
		pw.Gauge("dedupd_go_goroutines", "g", promtext.Sample{Value: 10})
		pw.Counter("dedupd_private_family_total", "must not be rolled up", promtext.Sample{Value: 999})
		w.Write(buf.Bytes())
	}
}

func TestWriteRollup(t *testing.T) {
	// Two healthy workers, one serving garbage, one unreachable.
	good1 := httptest.NewServer(fakeExposition(3))
	defer good1.Close()
	good2 := httptest.NewServer(fakeExposition(4))
	defer good2.Close()
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not an exposition {{{"))
	}))
	defer garbage.Close()

	c := NewCoordinator(fastConfig(t))
	for _, u := range []string{good1.URL, good2.URL, garbage.URL, "http://127.0.0.1:1"} {
		c.AddPeer(u)
	}

	vals := renderFamilies(t, func(pw *promtext.Writer) {
		c.WriteRollup(context.Background(), pw)
	})
	if vals["dedupd_cluster_workers_scraped"] != 2 {
		t.Errorf("workers_scraped = %v, want 2", vals["dedupd_cluster_workers_scraped"])
	}
	if vals["dedupd_cluster_workers_scrape_failed"] != 2 {
		t.Errorf("workers_scrape_failed = %v, want 2 (garbage + unreachable)", vals["dedupd_cluster_workers_scrape_failed"])
	}
	if got := vals["dedupd_cluster_agg_worker_block_solves_total"]; got != 7 {
		t.Errorf("agg solves = %v, want 3+4", got)
	}
	if got := vals["dedupd_cluster_agg_worker_block_cache_hits_total"]; got != 2 {
		t.Errorf("agg cache hits = %v, want 2", got)
	}
	if got := vals["dedupd_cluster_agg_go_goroutines"]; got != 20 {
		t.Errorf("agg goroutines = %v, want 20", got)
	}
	for name := range vals {
		if strings.Contains(name, "private_family") {
			t.Errorf("non-allowlisted family leaked into the roll-up: %s", name)
		}
	}

	// Dead workers are not scraped at all.
	c.markDead(good2.URL)
	vals = renderFamilies(t, func(pw *promtext.Writer) {
		c.WriteRollup(context.Background(), pw)
	})
	if vals["dedupd_cluster_workers_scraped"] != 1 || vals["dedupd_cluster_agg_worker_block_solves_total"] != 3 {
		t.Errorf("dead worker still scraped: scraped=%v solves=%v",
			vals["dedupd_cluster_workers_scraped"], vals["dedupd_cluster_agg_worker_block_solves_total"])
	}

	// A non-200 worker is a scrape failure.
	status := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusForbidden)
	}))
	defer status.Close()
	if _, err := c.scrapeWorker(context.Background(), status.URL); err == nil {
		t.Error("403 scrape reported success")
	}
}

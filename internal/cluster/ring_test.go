package cluster

import (
	"reflect"
	"testing"
)

func TestRingWalkCoversAllWorkers(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r := buildRing(ids, 16)
	for key := uint64(0); key < 64; key++ {
		walk := r.walk(key * 0x9e3779b97f4a7c15)
		if len(walk) != len(ids) {
			t.Fatalf("walk(%d) visited %d workers, want %d", key, len(walk), len(ids))
		}
		seen := map[string]bool{}
		for _, id := range walk {
			if seen[id] {
				t.Fatalf("walk(%d) repeated %s", key, id)
			}
			seen[id] = true
		}
	}
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	// The coordinator always sorts member ids before building, but the
	// ring itself must not care: identical id sets give identical walks.
	a := buildRing([]string{"w1", "w2", "w3"}, 32)
	b := buildRing([]string{"w3", "w1", "w2"}, 32)
	for key := uint64(0); key < 32; key++ {
		h := hashKey(BlockKey(Dataset{ID: "ds", Revision: int64(key)}, []int{1, 2}))
		if !reflect.DeepEqual(a.walk(h), b.walk(h)) {
			t.Fatalf("walks diverge for key %d: %v vs %v", key, a.walk(h), b.walk(h))
		}
	}
}

// TestRingStability checks the consistent-hashing property the failover
// design rests on: removing one worker only moves the blocks that
// worker owned — every other block keeps its primary.
func TestRingStability(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	full := buildRing(ids, defaultVNodes)
	without := buildRing([]string{"w1", "w2", "w4"}, defaultVNodes)
	moved, owned := 0, 0
	for i := 0; i < 500; i++ {
		h := hashKey(BlockKey(Dataset{ID: "stab", Revision: int64(i)}, []int{i}))
		before := full.walk(h)[0]
		after := without.walk(h)[0]
		if before == "w3" {
			owned++
			// Orphaned blocks must land on the dead worker's ring
			// successor — the same worker the full ring lists second.
			if want := full.walk(h)[1]; after != want {
				t.Errorf("block %d reassigned to %s, want ring successor %s", i, after, want)
			}
			continue
		}
		if after != before {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d blocks not owned by the removed worker changed owner", moved)
	}
	if owned == 0 {
		t.Error("test corpus never placed a block on the removed worker")
	}
}

// TestRingBalance pins the vnode count's placement smoothness: across 4
// workers no one takes more than twice the fair share.
func TestRingBalance(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	r := buildRing(ids, defaultVNodes)
	counts := map[string]int{}
	const blocks = 2000
	for i := 0; i < blocks; i++ {
		h := hashKey(BlockKey(Dataset{ID: "bal", Revision: int64(i)}, []int{i, i + 1}))
		counts[r.walk(h)[0]]++
	}
	for id, n := range counts {
		if n > blocks/len(ids)*2 {
			t.Errorf("worker %s owns %d of %d blocks (fair share %d)", id, n, blocks, blocks/len(ids))
		}
		if n == 0 {
			t.Errorf("worker %s owns no blocks", id)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if w := buildRing(nil, 8).walk(42); w != nil {
		t.Errorf("empty ring walked to %v", w)
	}
	// vnodes <= 0 falls back to the default rather than an empty ring.
	if r := buildRing([]string{"w"}, 0); len(r.points) != defaultVNodes {
		t.Errorf("vnodes 0 built %d points, want %d", len(r.points), defaultVNodes)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"fuzzydup/internal/blocked"
	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
)

// distSolve runs one distributed solve through a coordinator built for
// the test and compares the partition bit-for-bit with core.Solve.
func distSolve(t *testing.T, c *Coordinator, ds Dataset, keys []string, prob core.Problem, label string) *blocked.Result {
	t.Helper()
	var stats core.Phase1Stats
	res, err := c.Solve(context.Background(), ds, keys, distance.Edit{}, "ed", prob,
		blocked.DefaultStrategy(), blocked.Options{Parallel: 4, Exhaustive: true, Stats: &stats})
	if err != nil {
		t.Fatalf("%s: distributed solve: %v", label, err)
	}
	want := referenceGroups(t, keys, prob)
	if !reflect.DeepEqual(res.Groups, want) {
		t.Fatalf("%s: distributed partition diverged from core.Solve\ngot:  %v\nwant: %v",
			label, res.Groups, want)
	}
	return res
}

// TestDistributedMatchesCoreSolve is the central equivalence test: the
// coordinator fans block solves out to 1–4 real worker HTTP servers and
// the resulting partition must be bit-for-bit the monolithic core.Solve
// answer, across DE_S, DE_D, and combined cuts.
func TestDistributedMatchesCoreSolve(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		keys := typoCorpus(rand.New(rand.NewSource(seed)), 90)
		for nw := 1; nw <= 4; nw++ {
			workers, urls := startWorkers(t, nw)
			c := NewCoordinator(fastConfig(t))
			for _, u := range urls {
				c.AddPeer(u)
			}
			for pi, prob := range testProblems() {
				label := fmt.Sprintf("seed=%d workers=%d %s", seed, nw, probLabel(pi, prob))
				ds := Dataset{ID: fmt.Sprintf("ds-%d", seed), Revision: int64(pi)}
				distSolve(t, c, ds, keys, prob, label)
			}
			if c.LocalFallbacks.Load() != 0 {
				t.Errorf("seed=%d workers=%d: healthy cluster fell back locally %d times",
					seed, nw, c.LocalFallbacks.Load())
			}
			solved := int64(0)
			for _, w := range workers {
				solved += w.Solves.Load()
			}
			if solved == 0 {
				t.Errorf("seed=%d workers=%d: no block reached a worker", seed, nw)
			}
		}
	}
}

// TestDistributedWorkerDiesMidSolve injects a failpoint transport that
// kills one worker after it has answered a few blocks: the remaining
// blocks must reassign to survivors and the result stay exact.
func TestDistributedWorkerDiesMidSolve(t *testing.T) {
	// A diameter cut: typo clusters shard into ~25 certified blocks, so
	// the victim owns several and dies with blocks still to serve. (Size
	// cuts under normalized edit distance honestly collapse to a few
	// large blocks — the growth spheres of a [0,1]-normalized metric
	// reach most of the corpus — so they exercise the wire but not
	// reassignment fan-out.)
	keys := typoCorpus(rand.New(rand.NewSource(11)), 150)
	prob := core.Problem{Cut: core.Cut{Diameter: 0.3}, C: 3}

	_, urls := startWorkers(t, 3)
	victim := strings.TrimPrefix(urls[0], "http://")
	served := 0
	fp := &failpointTransport{}
	fp.set(func(req *http.Request) error {
		if req.URL.Host == victim && req.URL.Path == SolvePath {
			served++
			if served > 2 {
				return errors.New("failpoint: worker killed")
			}
		}
		return nil
	})
	cfg := fastConfig(t)
	cfg.Client = &http.Client{Transport: fp}
	c := NewCoordinator(cfg)
	for _, u := range urls {
		c.AddPeer(u)
	}

	res := distSolve(t, c, Dataset{ID: "chaos", Revision: 1}, keys, prob, "kill mid-solve")
	if res.BlocksSolved == 0 {
		t.Fatal("no blocks solved")
	}
	if c.BlocksReassigned.Load() == 0 {
		t.Error("victim died mid-solve but no block was reassigned")
	}
	if c.LocalFallbacks.Load() != 0 {
		t.Errorf("survivors were alive yet %d blocks fell back locally", c.LocalFallbacks.Load())
	}
	if c.WorkersAlive() != 2 {
		t.Errorf("WorkersAlive = %d after one death, want 2", c.WorkersAlive())
	}
}

// TestDistributedFlakyTransport drops a deterministic ~30% of solve
// requests with retryable errors: the bounded-retry ladder must absorb
// them without changing the result.
func TestDistributedFlakyTransport(t *testing.T) {
	keys := typoCorpus(rand.New(rand.NewSource(23)), 100)
	prob := core.Problem{Cut: core.Cut{Diameter: 0.35}, C: 3}

	_, urls := startWorkers(t, 3)
	flake := rand.New(rand.NewSource(99))
	dropped := 0
	fp := &failpointTransport{}
	fp.set(func(req *http.Request) error {
		if req.URL.Path == SolvePath && flake.Intn(10) < 3 {
			dropped++
			return errors.New("failpoint: connection reset")
		}
		return nil
	})
	cfg := fastConfig(t)
	cfg.Retries = 4 // enough budget that a 30% drop rate cannot exhaust every owner
	cfg.Client = &http.Client{Transport: fp}
	c := NewCoordinator(cfg)
	for _, u := range urls {
		c.AddPeer(u)
	}

	distSolve(t, c, Dataset{ID: "flaky", Revision: 1}, keys, prob, "flaky transport")
	if dropped == 0 {
		t.Error("failpoint never fired; the test exercised nothing")
	}
}

// TestDistributedAllWorkersDead exercises the last rung: with every
// worker unreachable the coordinator solves blocks itself, still
// bit-for-bit exact.
func TestDistributedAllWorkersDead(t *testing.T) {
	keys := typoCorpus(rand.New(rand.NewSource(31)), 60)
	prob := core.Problem{Cut: core.Cut{MaxSize: 4}, C: 3}

	fp := &failpointTransport{}
	fp.set(func(req *http.Request) error { return errors.New("failpoint: network down") })
	cfg := fastConfig(t)
	cfg.Client = &http.Client{Transport: fp}
	c := NewCoordinator(cfg)
	c.AddPeer("http://127.0.0.1:1") // never reachable
	c.AddPeer("http://127.0.0.1:2")

	distSolve(t, c, Dataset{ID: "dark", Revision: 1}, keys, prob, "all workers dead")
	if c.LocalFallbacks.Load() == 0 {
		t.Error("no local fallbacks despite a fully dead fleet")
	}
	if c.WorkersAlive() != 0 {
		t.Errorf("WorkersAlive = %d, want 0", c.WorkersAlive())
	}

	// A coordinator with no members at all must also degrade to local.
	lone := NewCoordinator(fastConfig(t))
	distSolve(t, lone, Dataset{ID: "alone", Revision: 1}, keys, prob, "no members")
	if lone.LocalFallbacks.Load() == 0 {
		t.Error("memberless coordinator reported no local fallbacks")
	}
}

// TestDistributedIdempotentReplay re-runs the identical solve against
// the same dataset revision: every block must replay from the workers'
// idempotency caches rather than recompute.
func TestDistributedIdempotentReplay(t *testing.T) {
	keys := typoCorpus(rand.New(rand.NewSource(41)), 80)
	prob := core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3}

	workers, urls := startWorkers(t, 2)
	c := NewCoordinator(fastConfig(t))
	for _, u := range urls {
		c.AddPeer(u)
	}
	ds := Dataset{ID: "replay", Revision: 7}
	first := distSolve(t, c, ds, keys, prob, "first run")
	solvesBefore := workers[0].Solves.Load() + workers[1].Solves.Load()

	second := distSolve(t, c, ds, keys, prob, "replayed run")
	if !reflect.DeepEqual(first.Groups, second.Groups) {
		t.Fatal("replayed solve diverged from the first")
	}
	if got := workers[0].Solves.Load() + workers[1].Solves.Load(); got != solvesBefore {
		t.Errorf("replay recomputed blocks: %d solves before, %d after", solvesBefore, got)
	}
	if hits := workers[0].CacheHits.Load() + workers[1].CacheHits.Load(); hits == 0 {
		t.Error("replay produced no cache hits")
	}

	// A new revision is a different corpus state: blocks must recompute.
	distSolve(t, c, Dataset{ID: "replay", Revision: 8}, keys, prob, "new revision")
	if got := workers[0].Solves.Load() + workers[1].Solves.Load(); got == solvesBefore {
		t.Error("bumped revision still served from cache")
	}
}

// TestDistributedCancellation aborts the solve via context: the solve
// must return the context error promptly instead of retrying through
// the backoff ladder.
func TestDistributedCancellation(t *testing.T) {
	keys := typoCorpus(rand.New(rand.NewSource(53)), 80)
	prob := core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3}

	ctx, cancel := context.WithCancel(context.Background())
	fp := &failpointTransport{}
	fp.set(func(req *http.Request) error {
		cancel() // first wire touch aborts the job
		return errors.New("failpoint: cancelled")
	})
	cfg := fastConfig(t)
	cfg.Client = &http.Client{Transport: fp}
	c := NewCoordinator(cfg)
	c.AddPeer("http://127.0.0.1:1")

	_, err := c.Solve(ctx, Dataset{ID: "cancel", Revision: 1}, keys, distance.Edit{}, "ed", prob,
		blocked.DefaultStrategy(), blocked.Options{Parallel: 2, Exhaustive: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
}

// TestDistributedRejectsCorpusDependentMetric pins the admission check:
// a block-local IDF table would silently diverge from the corpus-wide
// one, so the solve must refuse rather than approximate.
func TestDistributedRejectsCorpusDependentMetric(t *testing.T) {
	keys := []string{"alpha", "beta"}
	c := NewCoordinator(fastConfig(t))
	m, err := distance.ByName("fms", keys)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Solve(context.Background(), Dataset{ID: "x", Revision: 1}, keys, m, "fms",
		core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3}, blocked.DefaultStrategy(), blocked.Options{})
	if err == nil || !strings.Contains(err.Error(), "corpus-dependent") {
		t.Fatalf("corpus-dependent metric accepted: %v", err)
	}
}

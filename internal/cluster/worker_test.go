package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"fuzzydup/internal/core"
)

func solveBody(t *testing.T, ds Dataset, records []string, params Params) []byte {
	t.Helper()
	ids := make([]int, len(records))
	for i := range ids {
		ids[i] = i
	}
	body, err := json.Marshal(SolveRequest{
		Dataset:  ds.ID,
		Revision: ds.Revision,
		BlockKey: BlockKey(ds, ids),
		Params:   params,
		Records:  records,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSolve(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+SolvePath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func edProblem() core.Problem {
	return core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3}
}

func TestWorkerSolveAndCache(t *testing.T) {
	workers, urls := startWorkers(t, 1)
	w, url := workers[0], urls[0]
	params := ParamsFor("ed", edProblem())
	records := []string{"kettlebridge", "kettlebrldge", "kettlebridg", "parliamentary"}
	body := solveBody(t, Dataset{ID: "ds", Revision: 1}, records, params)

	code, raw := postSolve(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", code, raw)
	}
	var first SolveResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || len(first.Rel.Rows) != len(records) {
		t.Fatalf("first solve: cached=%v rows=%d", first.Cached, len(first.Rel.Rows))
	}
	if w.Solves.Load() != 1 || w.CacheHits.Load() != 0 {
		t.Fatalf("counters after first solve: solves=%d hits=%d", w.Solves.Load(), w.CacheHits.Load())
	}
	if w.SolveDuration.Count() != 1 {
		t.Errorf("SolveDuration count = %d", w.SolveDuration.Count())
	}

	// The identical request replays from the idempotency cache.
	_, raw = postSolve(t, url, body)
	var second SolveResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("replay not marked cached")
	}
	if !reflect.DeepEqual(first.Groups, second.Groups) || !reflect.DeepEqual(first.Rel, second.Rel) {
		t.Error("replayed result differs from the original")
	}
	if w.Solves.Load() != 1 || w.CacheHits.Load() != 1 {
		t.Fatalf("counters after replay: solves=%d hits=%d", w.Solves.Load(), w.CacheHits.Load())
	}

	// The same block under different parameters is a distinct solve: the
	// cache key carries the parameter fingerprint.
	p2 := params
	p2.C = 5
	if code, raw := postSolve(t, url, solveBody(t, Dataset{ID: "ds", Revision: 1}, records, p2)); code != http.StatusOK {
		t.Fatalf("param variant: status %d: %s", code, raw)
	}
	if w.Solves.Load() != 2 {
		t.Errorf("param variant served from cache: solves=%d", w.Solves.Load())
	}
}

func TestWorkerCacheEviction(t *testing.T) {
	w := NewWorker(testLogger(t), 2) // room for two blocks
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+SolvePath, w.HandleSolve)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	params := ParamsFor("ed", edProblem())
	bodies := make([][]byte, 3)
	for i := range bodies {
		records := []string{fmt.Sprintf("record-%d-alpha", i), fmt.Sprintf("record-%d-alphb", i)}
		bodies[i] = solveBody(t, Dataset{ID: "evict", Revision: int64(i)}, records, params)
		if code, raw := postSolve(t, ts.URL, bodies[i]); code != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, code, raw)
		}
	}
	// Block 0 was evicted FIFO; re-requesting it recomputes.
	if _, raw := postSolve(t, ts.URL, bodies[0]); false {
		_ = raw
	}
	if w.Solves.Load() != 4 {
		t.Errorf("solves = %d after FIFO eviction replay, want 4", w.Solves.Load())
	}
	// Block 2 is still cached.
	postSolve(t, ts.URL, bodies[2])
	if w.CacheHits.Load() != 1 {
		t.Errorf("cache hits = %d, want 1", w.CacheHits.Load())
	}
}

func TestWorkerSolveRejections(t *testing.T) {
	_, urls := startWorkers(t, 1)
	url := urls[0]
	good := ParamsFor("ed", edProblem())

	type tc struct {
		name string
		body []byte
		code string
	}
	cases := []tc{
		{"invalid json", []byte("not json"), "bad_spec"},
		{"missing block key", mustJSON(SolveRequest{Records: []string{"a"}, Params: good}), "bad_spec"},
		{"no records", mustJSON(SolveRequest{BlockKey: "k", Params: good}), "bad_spec"},
	}
	badMetric := good
	badMetric.Metric = "no-such-metric"
	cases = append(cases, tc{"unknown metric", mustJSON(SolveRequest{BlockKey: "k", Records: []string{"a"}, Params: badMetric}), "bad_spec"})
	corpusDep := good
	corpusDep.Metric = "fms"
	cases = append(cases, tc{"corpus-dependent metric", mustJSON(SolveRequest{BlockKey: "k", Records: []string{"a"}, Params: corpusDep}), "bad_spec"})
	badAgg := good
	badAgg.Agg = "median"
	cases = append(cases, tc{"unknown agg", mustJSON(SolveRequest{BlockKey: "k", Records: []string{"a"}, Params: badAgg}), "bad_spec"})

	for _, c := range cases {
		code, raw := postSolve(t, url, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Code != c.code {
			t.Errorf("%s: error body %s", c.name, raw)
		}
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func TestWorkerDrain(t *testing.T) {
	workers, urls := startWorkers(t, 1)
	w, url := workers[0], urls[0]
	if w.Draining() {
		t.Fatal("fresh worker draining")
	}
	w.BeginDrain()
	w.BeginDrain() // idempotent
	if !w.Draining() {
		t.Fatal("BeginDrain did not stick")
	}

	body := solveBody(t, Dataset{ID: "drain", Revision: 1}, []string{"alpha", "alphb"}, ParamsFor("ed", edProblem()))
	code, raw := postSolve(t, url, body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining solve: status %d: %s", code, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Code != "draining" {
		t.Errorf("draining error body: %s", raw)
	}
	if w.Rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", w.Rejected.Load())
	}
	// Nothing in flight: Wait returns immediately.
	done := make(chan struct{})
	go func() { w.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung with no in-flight solves")
	}
}

// TestRegistrarLifecycle drives the worker-side announce loop against a
// live coordinator: register on start, heartbeats keep it alive, and
// Deregister removes it immediately.
func TestRegistrarLifecycle(t *testing.T) {
	c := NewCoordinator(fastConfig(t))
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RegisterPath, c.HandleRegister)
	mux.HandleFunc("POST "+HeartbeatPath, c.HandleHeartbeat)
	mux.HandleFunc("POST "+DeregisterPath, c.HandleDeregister)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	g := &Registrar{
		Coordinators: []string{ts.URL, "http://127.0.0.1:1"}, // second is unreachable: logged, not fatal
		Self:         "http://worker-1",
		Every:        10 * time.Millisecond,
		Logger:       testLogger(t),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); g.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for c.WorkersAlive() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Worker != "http://worker-1" || ws[0].Static {
		t.Fatalf("registered worker = %+v", ws)
	}

	// Heartbeats keep arriving after the initial registration.
	before := ws[0].LastBeatAgeSeconds
	time.Sleep(50 * time.Millisecond)
	if again := c.Workers(); len(again) != 1 || again[0].LastBeatAgeSeconds > 1 {
		t.Errorf("heartbeats stalled: %+v (initial age %v)", again, before)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	g.Deregister()
	if got := len(c.Workers()); got != 0 {
		t.Errorf("%d workers after Deregister, want 0", got)
	}
}

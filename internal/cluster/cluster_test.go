package cluster

import (
	"strings"
	"testing"

	"fuzzydup/internal/core"
)

func TestBlockKeyIdentity(t *testing.T) {
	ds := Dataset{ID: "ds-1", Revision: 7}
	base := BlockKey(ds, []int{1, 5, 9})

	if got := BlockKey(ds, []int{1, 5, 9}); got != base {
		t.Errorf("same block hashed differently: %s vs %s", got, base)
	}
	distinct := []string{
		BlockKey(ds, []int{1, 5}),
		BlockKey(ds, []int{1, 5, 10}),
		BlockKey(Dataset{ID: "ds-2", Revision: 7}, []int{1, 5, 9}),
		BlockKey(Dataset{ID: "ds-1", Revision: 8}, []int{1, 5, 9}),
	}
	seen := map[string]bool{base: true}
	for _, k := range distinct {
		if seen[k] {
			t.Errorf("distinct block collided on key %s", k)
		}
		seen[k] = true
	}
	// Varint encoding must keep member boundaries unambiguous.
	if BlockKey(ds, []int{12, 3}) == BlockKey(ds, []int{1, 23}) {
		t.Error("member concatenation is ambiguous")
	}
}

func TestParseAgg(t *testing.T) {
	for name, want := range map[string]core.Agg{
		"": core.AggMax, "max": core.AggMax, "avg": core.AggAvg, "max2": core.AggMax2,
	} {
		got, err := ParseAgg(name)
		if err != nil || got != want {
			t.Errorf("ParseAgg(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Error("ParseAgg accepted an unknown aggregation")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	prob := core.Problem{
		Cut:            core.Cut{MaxSize: 4, Diameter: 0.25},
		Agg:            core.AggAvg,
		C:              3,
		P:              1.5,
		MinimalCompact: true,
	}
	p := ParamsFor("ed", prob)
	back, err := p.Problem()
	if err != nil {
		t.Fatalf("Problem(): %v", err)
	}
	if back.Cut != prob.Cut || back.Agg != prob.Agg || back.C != prob.C ||
		back.P != prob.P || back.MinimalCompact != prob.MinimalCompact {
		t.Errorf("round trip changed the problem:\ngot  %+v\nwant %+v", back, prob)
	}
}

func TestParamsRejections(t *testing.T) {
	good := ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3})

	for _, metric := range []string{"fms", "cosine", "soft-tfidf"} {
		if !CorpusDependent(metric) {
			t.Errorf("CorpusDependent(%q) = false", metric)
		}
		p := good
		p.Metric = metric
		if _, err := p.Problem(); err == nil || !strings.Contains(err.Error(), "corpus-dependent") {
			t.Errorf("metric %q accepted: %v", metric, err)
		}
	}
	for _, metric := range []string{"ed", "jaro", "jaccard", "damerau"} {
		if CorpusDependent(metric) {
			t.Errorf("CorpusDependent(%q) = true", metric)
		}
	}

	bad := good
	bad.Agg = "median"
	if _, err := bad.Problem(); err == nil {
		t.Error("unknown aggregation accepted")
	}
	bad = good
	bad.MaxSize, bad.Diameter = 0, 0
	if _, err := bad.Problem(); err == nil {
		t.Error("empty cut accepted")
	}
}

func TestParamsFingerprintDistinguishes(t *testing.T) {
	base := ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3})
	variants := []Params{
		ParamsFor("jaro", core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3}),
		ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 4}, C: 3}),
		ParamsFor("ed", core.Problem{Cut: core.Cut{Diameter: 0.3}, C: 3}),
		ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 3}, C: 4}),
		ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 3}, C: 3, MinimalCompact: true}),
		ParamsFor("ed", core.Problem{Cut: core.Cut{MaxSize: 3}, Agg: core.AggAvg, C: 3}),
	}
	seen := map[string]bool{base.fingerprint(): true}
	for _, v := range variants {
		fp := v.fingerprint()
		if seen[fp] {
			t.Errorf("parameter variant %+v collided on fingerprint %s", v, fp)
		}
		seen[fp] = true
	}
}

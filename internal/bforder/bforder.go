// Package bforder implements the index lookup orders of the paper's
// Section 4.1.1: the breadth-first (BF) order that visits each tuple right
// after its nearest neighbors (Figure 5's PrepareNNLists procedure), and
// the random order it is compared against in Figure 8.
//
// The BF order corresponds to a breadth-first traversal of a tree whose
// root is an arbitrary tuple and whose children are a node's nearest
// neighbors not already in the tree. The tree is never materialized: a
// bounded FIFO queue of tuple IDs plus a visited bit vector realize the
// traversal, and when the queue drains, the next unvisited tuple from a
// sequential scan of the relation restarts it.
package bforder

import "math/rand"

// Visitor is invoked exactly once per tuple, in lookup order. It performs
// the actual index lookup (fetch NN-list, compute neighborhood growth,
// emit the NN_Reln row) and returns the tuple IDs of the neighbors found,
// which the BF driver enqueues as the tuple's children.
type Visitor func(id int) (neighbors []int)

// DefaultMaxQueue bounds the BF queue. The paper notes the queue holds
// only tuple identifiers and stops admitting new entries when it outgrows
// the memory made available; 1<<16 IDs is a few hundred kilobytes.
const DefaultMaxQueue = 1 << 16

// BF visits all n tuples in breadth-first order, calling visit once per
// tuple, and returns the visit order. maxQueue bounds the pending queue
// (<= 0 selects DefaultMaxQueue): when full, discovered neighbors are not
// enqueued and will be reached by the scan instead, exactly as in the
// paper's Figure 5 step 2c.
func BF(n, maxQueue int, visit Visitor) []int {
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, min(n, maxQueue))
	scan := 0 // frontier of the sequential restart scan

	for len(order) < n {
		if len(queue) == 0 {
			// Step 3: pull the next unvisited tuple from the scan of R.
			for scan < n && visited[scan] {
				scan++
			}
			if scan >= n {
				break
			}
			queue = append(queue, scan)
		}
		v := queue[0]
		queue = queue[1:]
		if visited[v] {
			continue
		}
		visited[v] = true
		order = append(order, v)
		for _, u := range visit(v) {
			if u < 0 || u >= n || visited[u] {
				continue
			}
			if len(queue) >= maxQueue {
				break
			}
			queue = append(queue, u)
		}
	}
	return order
}

// Random visits all n tuples in a seeded random permutation, calling visit
// once per tuple, and returns the visit order. Neighbor results are
// ignored; this is the baseline order of Figure 8.
func Random(n int, seed int64, visit Visitor) []int {
	return RandomFrom(n, rand.New(rand.NewSource(seed)), visit)
}

// RandomFrom is Random with an injected source: the permutation is drawn
// from rng, never from the global math/rand source, so concurrent callers
// (e.g. server jobs running order experiments side by side) stay
// reproducible and race-free as long as each supplies its own *rand.Rand.
func RandomFrom(n int, rng *rand.Rand, visit Visitor) []int {
	order := rng.Perm(n)
	for _, id := range order {
		visit(id)
	}
	return order
}

// Sequential visits tuples 0..n-1 in ID order, calling visit once per
// tuple, and returns the order. Useful as a third reference point: real
// relations often have some insertion locality, so sequential order
// typically falls between random and BF.
func Sequential(n int, visit Visitor) []int {
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[i] = i
		visit(i)
	}
	return order
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

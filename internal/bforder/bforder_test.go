package bforder

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// ringNeighbors returns a visitor over a ring topology: neighbors of i are
// i-1 and i+1 (mod n).
func ringNeighbors(n int, log *[]int) Visitor {
	return func(id int) []int {
		*log = append(*log, id)
		return []int{(id + 1) % n, (id - 1 + n) % n}
	}
}

func allVisitedOnce(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("visited %d tuples, want %d", len(order), n)
	}
	seen := make(map[int]bool, n)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("tuple %d visited twice", id)
		}
		seen[id] = true
	}
}

func TestBFVisitsAllOnce(t *testing.T) {
	const n = 100
	var log []int
	order := BF(n, 0, ringNeighbors(n, &log))
	allVisitedOnce(t, order, n)
	if len(log) != n {
		t.Errorf("visitor called %d times, want %d", len(log), n)
	}
}

func TestBFFollowsNeighbors(t *testing.T) {
	// With a ring, BF from 0 should walk outward: 0, 1, n-1, 2, n-2, ...
	const n = 10
	var log []int
	order := BF(n, 0, ringNeighbors(n, &log))
	want := []int{0, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBFDisconnected(t *testing.T) {
	// Tuples with no neighbors: the scan restart must still reach everyone.
	const n = 25
	order := BF(n, 0, func(id int) []int { return nil })
	allVisitedOnce(t, order, n)
	// With no neighbor hints the order degenerates to the scan order.
	for i, id := range order {
		if i != id {
			t.Errorf("order[%d] = %d, want scan order", i, id)
			break
		}
	}
}

func TestBFQueueBound(t *testing.T) {
	// A hub topology where tuple 0 returns every other tuple as neighbor;
	// with maxQueue 4 most must come from the scan. Everyone still visited.
	const n = 50
	hub := func(id int) []int {
		if id == 0 {
			out := make([]int, n-1)
			for i := range out {
				out[i] = i + 1
			}
			return out
		}
		return nil
	}
	order := BF(n, 4, hub)
	allVisitedOnce(t, order, n)
}

func TestBFIgnoresBogusNeighbors(t *testing.T) {
	const n = 10
	order := BF(n, 0, func(id int) []int { return []int{-5, n + 3, id} })
	allVisitedOnce(t, order, n)
}

func TestRandomVisitsAllOnce(t *testing.T) {
	const n = 64
	var log []int
	order := Random(n, 42, func(id int) []int { log = append(log, id); return nil })
	allVisitedOnce(t, order, n)
	if len(log) != n {
		t.Errorf("visitor called %d times", len(log))
	}
	// Determinism under the same seed.
	order2 := Random(n, 42, func(id int) []int { return nil })
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("random order not deterministic for fixed seed")
		}
	}
	// Different seeds give different orders (overwhelmingly likely).
	order3 := Random(n, 43, func(id int) []int { return nil })
	same := true
	for i := range order {
		if order[i] != order3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical order")
	}
}

func TestRandomFromInjectedSource(t *testing.T) {
	const n = 64
	// An injected source reproduces Random's permutation for the same
	// seed: Random is a thin wrapper over RandomFrom.
	base := Random(n, 7, func(id int) []int { return nil })
	inj := RandomFrom(n, rand.New(rand.NewSource(7)), func(id int) []int { return nil })
	if !reflect.DeepEqual(base, inj) {
		t.Errorf("RandomFrom(seed 7) = %v, want %v", inj, base)
	}
	allVisitedOnce(t, inj, n)

	// Concurrent runs with private sources are race-free and each
	// deterministic (the race detector guards the first claim).
	var wg sync.WaitGroup
	orders := make([][]int, 8)
	for i := range orders {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			orders[i] = RandomFrom(n, rand.New(rand.NewSource(int64(i%2))), func(id int) []int { return nil })
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(orders); i++ {
		if !reflect.DeepEqual(orders[i], orders[i%2]) {
			t.Fatalf("order %d diverged from its seed twin", i)
		}
	}
}

func TestSequential(t *testing.T) {
	const n = 7
	order := Sequential(n, func(id int) []int { return nil })
	if !sort.IntsAreSorted(order) || len(order) != n {
		t.Errorf("sequential order = %v", order)
	}
}

func TestBFZeroTuples(t *testing.T) {
	order := BF(0, 0, func(id int) []int { t.Fatal("visitor called"); return nil })
	if len(order) != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestBFLocalityBeatsRandom(t *testing.T) {
	// Measure order locality as the mean absolute gap between consecutive
	// visits on a line topology (neighbors i-1, i+1). BF should be far more
	// local than random.
	const n = 200
	line := func(id int) []int {
		var out []int
		if id > 0 {
			out = append(out, id-1)
		}
		if id < n-1 {
			out = append(out, id+1)
		}
		return out
	}
	gap := func(order []int) float64 {
		total := 0.0
		for i := 1; i < len(order); i++ {
			d := order[i] - order[i-1]
			if d < 0 {
				d = -d
			}
			total += float64(d)
		}
		return total / float64(len(order)-1)
	}
	bfGap := gap(BF(n, 0, line))
	rndGap := gap(Random(n, 1, func(id int) []int { return nil }))
	if bfGap*5 > rndGap {
		t.Errorf("BF gap %.1f should be well below random gap %.1f", bfGap, rndGap)
	}
}

package querysnap

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"fuzzydup"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/strutil"
)

// randCorpus draws n records over a small alphabet with injected fuzzy
// duplicates so the solved partition has non-trivial groups.
func randCorpus(r *rand.Rand, n int) [][]string {
	base := []string{
		"the doors", "doors, the", "miles davis", "milesdavis",
		"john coltrane", "jon coltrane", "nina simone", "nina simon",
		"charles mingus", "thelonious monk", "telonious monk",
	}
	recs := make([][]string, 0, n)
	for len(recs) < n {
		switch r.Intn(3) {
		case 0:
			recs = append(recs, []string{base[r.Intn(len(base))]})
		case 1:
			recs = append(recs, []string{mutate(r, base[r.Intn(len(base))])})
		default:
			recs = append(recs, []string{randWord(r), randWord(r)})
		}
	}
	return recs[:n]
}

func randWord(r *rand.Rand) string {
	n := 3 + r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + r.Intn(26)))
	}
	return b.String()
}

func mutate(r *rand.Rand, s string) string {
	b := []byte(s)
	for e := 1 + r.Intn(2); e > 0 && len(b) > 1; e-- {
		i := r.Intn(len(b))
		switch r.Intn(3) {
		case 0:
			b[i] = byte('a' + r.Intn(26))
		case 1:
			b = append(b[:i], append([]byte{byte('a' + r.Intn(26))}, b[i:]...)...)
		default:
			b = append(b[:i], b[i+1:]...)
		}
	}
	return string(b)
}

// buildFromSolve runs a full solve over recs and wraps the result in a
// snapshot, the way the server's job engine does.
func buildFromSolve(t *testing.T, recs [][]string, mode, metric string, k int, theta float64) *Snapshot {
	t.Helper()
	frecs := make([]fuzzydup.Record, len(recs))
	for i, rec := range recs {
		frecs[i] = fuzzydup.Record(rec)
	}
	d, err := fuzzydup.New(frecs, fuzzydup.Options{Metric: fuzzydup.Metric(metric)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var groups fuzzydup.Groups
	if mode == "size" {
		groups, err = d.GroupsBySize(k, 2)
	} else {
		groups, err = d.GroupsByDiameter(theta, 2)
	}
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	reps := make([]int, len(groups))
	for i, g := range groups {
		reps[i] = d.Representative(g)
	}
	rids := make([]int64, len(recs))
	for i := range rids {
		rids[i] = int64(i + 1)
	}
	snap, err := Build(Config{
		Dataset: "ds_test", Seq: 1, Rev: int64(len(recs)), JobID: "job_test",
		Built: time.Now(), Records: recs, RIDs: rids,
		Groups: [][]int(groups), Reps: reps,
		Params: Params{Mode: mode, K: k, Theta: theta, C: 2, Metric: metric},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return snap
}

// TestLookupMatchesSolve: for both cut families, querying every indexed
// record must return an exact match whose group is exactly the group the
// full solve assigned that record — same members, same representative.
func TestLookupMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		mode   string
		k      int
		theta  float64
		metric string
	}{
		{mode: "size", k: 4, metric: "ed"},
		{mode: "diameter", theta: 0.35, metric: "ed"},
		{mode: "size", k: 3, metric: "damerau"},
		{mode: "diameter", theta: 0.4, metric: "jaccard"},
	} {
		recs := randCorpus(r, 60)
		snap := buildFromSolve(t, recs, tc.mode, tc.metric, tc.k, tc.theta)

		// Reconstruct record index -> solved group from the snapshot's own
		// partition accessors is circular; instead re-derive from Build's
		// inputs by querying and checking membership directly.
		for i, rec := range recs {
			res := snap.Lookup(rec, 0)
			if len(res.Matches) == 0 {
				t.Fatalf("%s/%s: record %d has no exact match", tc.mode, tc.metric, i)
			}
			found := false
			for _, m := range res.Matches {
				if m.Index == i {
					found = true
					if !containsInt(m.Group.Indexes, i) {
						t.Fatalf("record %d not a member of its own group %v", i, m.Group.Indexes)
					}
					if !containsInt64(m.Group.Members, int64(i+1)) {
						t.Fatalf("record rid %d missing from group members %v", i+1, m.Group.Members)
					}
					if m.RID != int64(i+1) {
						t.Fatalf("record %d rid = %d, want %d", i, m.RID, i+1)
					}
					if !containsInt64(m.Group.Members, m.Group.Representative) {
						t.Fatalf("representative %d outside group %v", m.Group.Representative, m.Group.Members)
					}
					if m.Group.Size != len(m.Group.Members) {
						t.Fatalf("group size %d != members %d", m.Group.Size, len(m.Group.Members))
					}
				}
			}
			if !found {
				t.Fatalf("record %d absent from its exact-match set", i)
			}
		}
	}
}

// TestLookupGroupsPartition: the groups reported across all lookups form
// exactly the solve's partition — every record in exactly one group.
func TestLookupGroupsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	recs := randCorpus(r, 80)
	snap := buildFromSolve(t, recs, "size", "ed", 5, 0)

	seen := make(map[int]int) // record index -> group id
	for i, rec := range recs {
		res := snap.Lookup(rec, 0)
		for _, m := range res.Matches {
			if m.Index != i {
				continue
			}
			for _, idx := range m.Group.Indexes {
				if g, ok := seen[idx]; ok && g != m.Group.ID {
					t.Fatalf("record %d in two groups: %d and %d", idx, g, m.Group.ID)
				}
				seen[idx] = m.Group.ID
			}
		}
	}
	if len(seen) != len(recs) {
		t.Fatalf("partition covers %d of %d records", len(seen), len(recs))
	}
}

// linearTopK is the reference the prefilter is checked against: verify
// every record with the true metric, keep the k smallest under the same
// (distance, index) order.
func linearTopK(metric distance.Metric, keys []string, query string, k int) []scored {
	all := make([]scored, len(keys))
	for i, rk := range keys {
		all[i] = scored{idx: i, dist: metric.Distance(query, rk)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].idx < all[b].idx
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestCandidatesExact: the prefiltered candidate search must return
// bit-for-bit what a linear exact scan returns — same indexes, same
// distances, same order — across randomized corpora and queries, for the
// pruned metrics (ed, damerau) and a full-scan metric (jaro).
func TestCandidatesExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, metricName := range []string{"ed", "damerau", "jaro"} {
		for trial := 0; trial < 20; trial++ {
			n := 30 + r.Intn(120)
			recs := randCorpus(r, n)
			snap := buildFromSolve(t, recs, "size", metricName, 4, 0)

			keys := make([]string, n)
			for i, rec := range recs {
				keys[i] = strutil.JoinFields(rec)
			}
			metric, err := distance.ByName(metricName, keys)
			if err != nil {
				t.Fatal(err)
			}

			for q := 0; q < 10; q++ {
				query := mutate(r, keys[r.Intn(n)])
				if _, dup := snap.byKey[query]; dup {
					continue // exact-match path, not a candidate query
				}
				k := 1 + r.Intn(8)
				want := linearTopK(metric, keys, query, k)
				res := snap.Lookup([]string{query}, k)
				if len(res.Matches) != 0 {
					t.Fatalf("%s: unexpected exact match for %q", metricName, query)
				}
				if len(res.Candidates) != len(want) {
					t.Fatalf("%s: %d candidates, want %d", metricName, len(res.Candidates), len(want))
				}
				for i, c := range res.Candidates {
					if c.Index != want[i].idx || c.Distance != want[i].dist {
						t.Fatalf("%s query %q k=%d: candidate %d = (%d, %v), want (%d, %v)",
							metricName, query, k, i, c.Index, c.Distance, want[i].idx, want[i].dist)
					}
				}
				if st := res.Stats; st.Verified+st.Pruned != st.Scanned {
					t.Fatalf("%s: stats don't add up: %+v", metricName, st)
				}
				if metricName == "jaro" && res.Stats.Pruned != 0 {
					t.Fatalf("jaro must full-scan, pruned %d", res.Stats.Pruned)
				}
			}
		}
	}
}

// TestLookupEdgeCases: duplicate keys return every match; k = 0 skips
// the candidate scan; unicode keys work; a single-record corpus works.
func TestLookupEdgeCases(t *testing.T) {
	recs := [][]string{
		{"dvořák", "symphony"},
		{"dvořák", "symphony"}, // byte-identical duplicate
		{"dvorak", "symphony"},
	}
	snap := buildFromSolve(t, recs, "size", "ed", 3, 0)

	res := snap.Lookup([]string{"dvořák", "symphony"}, 5)
	if len(res.Matches) != 2 {
		t.Fatalf("identical records: %d matches, want 2", len(res.Matches))
	}
	if len(res.Candidates) != 0 {
		t.Fatalf("exact match must skip the candidate scan")
	}

	res = snap.Lookup([]string{"dvorzak"}, 0)
	if len(res.Matches) != 0 || len(res.Candidates) != 0 {
		t.Fatalf("k=0 miss must return nothing, got %+v", res)
	}
	res = snap.Lookup([]string{"dvorzak", "symphony"}, 100)
	if len(res.Candidates) != 3 {
		t.Fatalf("k beyond corpus: %d candidates, want 3", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.Distance > b.Distance || (a.Distance == b.Distance && a.Index >= b.Index) {
			t.Fatalf("candidates out of order at %d: %+v", i, res.Candidates)
		}
	}

	single := buildFromSolve(t, [][]string{{"only one"}}, "size", "ed", 2, 0)
	res = single.Lookup([]string{"only won"}, 3)
	if len(res.Candidates) != 1 || res.Candidates[0].Index != 0 {
		t.Fatalf("single-record corpus: %+v", res)
	}
}

// TestBuildMetadata: accessors reflect the config, and Prefiltered is set
// only for the certified metrics.
func TestBuildMetadata(t *testing.T) {
	recs := [][]string{{"a"}, {"b"}}
	for metricName, want := range map[string]bool{"ed": true, "damerau": true, "jaro": false, "jaccard": false} {
		snap := buildFromSolve(t, recs, "size", metricName, 2, 0)
		if snap.Prefiltered() != want {
			t.Errorf("%s: Prefiltered = %v, want %v", metricName, snap.Prefiltered(), want)
		}
	}
	snap := buildFromSolve(t, recs, "size", "ed", 2, 0)
	if snap.Dataset() != "ds_test" || snap.Seq() != 1 || snap.JobID() != "job_test" || snap.Len() != 2 {
		t.Errorf("metadata mismatch: %q %d %q %d", snap.Dataset(), snap.Seq(), snap.JobID(), snap.Len())
	}
	if snap.Params().Metric != "ed" || snap.Params().Mode != "size" {
		t.Errorf("params mismatch: %+v", snap.Params())
	}
	if _, err := Build(Config{Params: Params{Metric: "nope"}}); err == nil {
		t.Error("Build with unknown metric must fail")
	}
}

// TestBuildCopiesInputs: mutating the config's slices after Build must
// not affect the snapshot (immutability is the whole point).
func TestBuildCopiesInputs(t *testing.T) {
	recs := [][]string{{"alpha"}, {"beta"}}
	rids := []int64{1, 2}
	groups := [][]int{{0}, {1}}
	reps := []int{0, 1}
	snap, err := Build(Config{
		Records: recs, RIDs: rids, Groups: groups, Reps: reps,
		Params: Params{Metric: "ed"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rids[0] = 99
	groups[0][0] = 1
	reps[0] = 1
	res := snap.Lookup([]string{"alpha"}, 0)
	if len(res.Matches) != 1 || res.Matches[0].RID != 1 {
		t.Fatalf("snapshot saw caller mutation: %+v", res.Matches)
	}
	if res.Matches[0].Group.Indexes[0] != 0 || res.Matches[0].Group.Representative != 1 {
		t.Fatalf("group state saw caller mutation: %+v", res.Matches[0].Group)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt64(s []int64, v int64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Package querysnap implements the online point-query path: an
// immutable, read-optimized snapshot of one dataset's solved dedup state
// that answers "which duplicate group does this record belong to?" in
// microseconds, without re-running a solve.
//
// A Snapshot holds the solved partition three ways at once — a
// key→records hash for exact-match lookups, a record→group map plus
// group membership lists for answering with full group context, and a
// flat array-of-uint64 bit-signature table (internal/nnindex's q-gram
// signature kernel) that prunes the nearest-candidate scan when no exact
// match exists. A Snapshot is deeply immutable after Build: every field
// is written once and never mutated, so any number of goroutines may
// Lookup concurrently with zero synchronization. Publication is the
// caller's job (internal/server swaps an atomic pointer, RCU-style);
// this package only promises that a Snapshot, once built, never changes.
//
// # Exactness
//
// The candidate search is exact, not approximate: its results are
// bit-for-bit what a linear scan of the true metric over every record
// would return. Signatures only prune; exact verification decides.
// A record is skipped only when a metric-specific lower bound proves its
// true distance exceeds the current k-th best — the bound (see
// nnindex.MissingBits) is sound for the edit-family metrics "ed" and
// "damerau", so a skipped record can never belong to the answer. For
// metrics with no certified bound the prefilter disables itself and
// every record is verified; slower, still exact.
package querysnap

import (
	"sort"
	"sync"
	"time"

	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
	"fuzzydup/internal/strutil"
)

// Params echoes the solved problem the snapshot answers for: which cut,
// thresholds, and metric produced its partition.
type Params struct {
	Mode   string  `json:"mode"`
	K      int     `json:"k,omitempty"`
	Theta  float64 `json:"theta,omitempty"`
	C      float64 `json:"c"`
	Metric string  `json:"metric"`
}

// Config is the input to Build: the dataset's records (with their stable
// rids) and the solved partition over them, plus identity metadata.
type Config struct {
	// Dataset is the dataset ID the snapshot serves.
	Dataset string
	// Seq is the publication sequence number (assigned by the publisher;
	// strictly increasing per dataset).
	Seq uint64
	// Rev is the dataset's mutation revision the solved state was
	// computed from; readers compare it against the live revision to
	// judge staleness.
	Rev int64
	// JobID is the job whose result the snapshot was built from.
	JobID string
	// Built is the build timestamp.
	Built time.Time
	// Records and RIDs are the solved corpus, parallel slices.
	Records [][]string
	RIDs    []int64
	// Groups is the solved partition over record indexes; Reps[i] is the
	// representative (medoid) index of Groups[i].
	Groups [][]int
	Reps   []int
	// Params describes the problem; Params.Metric names the metric used
	// for candidate distances (resolved via distance.ByName over the
	// record keys).
	Params Params
}

// Snapshot is the immutable read-optimized view. All exported methods
// are safe for unlimited concurrent use.
type Snapshot struct {
	dataset string
	seq     uint64
	rev     int64
	jobID   string
	built   time.Time
	params  Params

	keys    []string // joined field strings, index-parallel with rids
	rids    []int64
	lens    []int    // normalized rune length per key (bound denominators)
	nrunes  [][]rune // normalized runes per key (bounded-verify inputs); nil unless prefiltered
	groupOf []int    // record index -> group index
	groups  [][]int  // group index -> sorted member record indexes
	reps    []int    // group index -> representative record index

	byKey map[string][]int // exact-match buckets: key -> record indexes

	sigs   []uint64 // flat signature table, nnindex.SigWords per record
	metric distance.Metric
	// divisor is the per-edit gram-damage bound of the metric (nnindex
	// sig kernel); 0 means no certified bound — prefilter disabled, full
	// verify.
	divisor int

	// scratch pools per-lookup scan buffers (bounds, counting-sort
	// arrays, DP rows). Pooling is the only mutable state a Snapshot
	// carries, and sync.Pool makes it safe under the lock-free read
	// contract.
	scratch sync.Pool
}

// scanScratch is one lookup's worth of reusable candidate-scan buffers.
type scanScratch struct {
	lbs      []float64
	bucketOf []uint8
	order    []int32
	ed       distance.BoundedScratch
}

func (s *Snapshot) getScratch() *scanScratch {
	sc, _ := s.scratch.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{}
	}
	n := len(s.keys)
	if cap(sc.lbs) < n {
		sc.lbs = make([]float64, n)
		sc.bucketOf = make([]uint8, n)
		sc.order = make([]int32, n)
	}
	sc.lbs = sc.lbs[:n]
	sc.bucketOf = sc.bucketOf[:n]
	sc.order = sc.order[:n]
	return sc
}

// Build constructs a snapshot. The config's slices are copied or
// re-derived; the caller may mutate its inputs afterwards. Building is
// O(n) hashing plus O(n·len) signature construction and is meant to run
// off the query hot path (a job worker, not a request handler).
func Build(cfg Config) (*Snapshot, error) {
	n := len(cfg.Records)
	s := &Snapshot{
		dataset: cfg.Dataset,
		seq:     cfg.Seq,
		rev:     cfg.Rev,
		jobID:   cfg.JobID,
		built:   cfg.Built,
		params:  cfg.Params,
		keys:    make([]string, n),
		rids:    append([]int64(nil), cfg.RIDs...),
		lens:    make([]int, n),
		groupOf: make([]int, n),
		groups:  make([][]int, len(cfg.Groups)),
		reps:    append([]int(nil), cfg.Reps...),
		byKey:   make(map[string][]int, n),
	}
	norm := make([][]rune, n)
	for i, rec := range cfg.Records {
		k := strutil.JoinFields(rec)
		s.keys[i] = k
		norm[i] = []rune(strutil.Normalize(k))
		s.lens[i] = len(norm[i])
		s.byKey[k] = append(s.byKey[k], i)
	}
	for gi, g := range cfg.Groups {
		members := append([]int(nil), g...)
		sort.Ints(members)
		s.groups[gi] = members
		for _, idx := range members {
			s.groupOf[idx] = gi
		}
	}
	metric, err := distance.ByName(cfg.Params.Metric, s.keys)
	if err != nil {
		return nil, err
	}
	s.metric = metric
	s.sigs = nnindex.BuildSignatures(s.keys)
	switch metric.Name() {
	case "ed":
		s.divisor = nnindex.SigQ
	case "damerau":
		s.divisor = nnindex.SigQ + 1
	}
	if s.divisor > 0 {
		s.nrunes = norm
	}
	return s, nil
}

// Identity and metadata accessors.

// Dataset returns the dataset ID the snapshot serves.
func (s *Snapshot) Dataset() string { return s.dataset }

// Seq returns the publication sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Rev returns the dataset mutation revision the snapshot was built from.
func (s *Snapshot) Rev() int64 { return s.rev }

// JobID returns the job whose result the snapshot holds.
func (s *Snapshot) JobID() string { return s.jobID }

// Built returns the build timestamp.
func (s *Snapshot) Built() time.Time { return s.built }

// Params returns the solved problem's parameters.
func (s *Snapshot) Params() Params { return s.params }

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return len(s.keys) }

// Groups returns the number of groups in the snapshot's partition.
func (s *Snapshot) Groups() int { return len(s.groups) }

// Prefiltered reports whether the metric admits the certified signature
// bound (the prefilter actually prunes; otherwise lookups verify every
// record).
func (s *Snapshot) Prefiltered() bool { return s.divisor > 0 }

// Enumeration accessors, used by the SQL catalog to expose the solved
// partition as virtual-table rows. Returned slices are the snapshot's
// own immutable backing arrays: read freely, never mutate.

// RID returns the stable record ID of record index i.
func (s *Snapshot) RID(i int) int64 { return s.rids[i] }

// Key returns the joined field string of record index i.
func (s *Snapshot) Key(i int) string { return s.keys[i] }

// GroupOf returns the group index record index i belongs to.
func (s *Snapshot) GroupOf(i int) int { return s.groupOf[i] }

// Members returns group gi's member record indexes, ascending. The
// slice is shared and must not be mutated.
func (s *Snapshot) Members(gi int) []int { return s.groups[gi] }

// RepIndex returns the representative (medoid) record index of group gi.
func (s *Snapshot) RepIndex(gi int) int { return s.reps[gi] }

// Distance returns the snapshot metric's distance between two record
// indexes (used to compute group diameters on demand).
func (s *Snapshot) Distance(i, j int) float64 {
	return s.metric.Distance(s.keys[i], s.keys[j])
}

// GroupInfo is one duplicate group as seen from a query answer: its
// index in the solved partition, its members (by rid and by record
// index), and its representative's rid.
type GroupInfo struct {
	ID             int     `json:"id"`
	Size           int     `json:"size"`
	Representative int64   `json:"representative"`
	Members        []int64 `json:"members"`
	Indexes        []int   `json:"indexes"`
}

// Match is one record whose key exactly equals the query's key.
type Match struct {
	Index int       `json:"index"`
	RID   int64     `json:"rid"`
	Group GroupInfo `json:"group"`
}

// Candidate is one nearest-neighbor candidate of a query with no exact
// match: its true (exactly verified) distance and its group.
type Candidate struct {
	Index    int       `json:"index"`
	RID      int64     `json:"rid"`
	Distance float64   `json:"distance"`
	Group    GroupInfo `json:"group"`
}

// Stats counts the work of one lookup: Scanned signatures, Verified
// exact-metric calls, and Pruned records skipped by the certified bound.
// Scanned == Verified + Pruned on the candidate path; an exact-match hit
// scans nothing.
type Stats struct {
	Scanned  int `json:"scanned"`
	Verified int `json:"verified"`
	Pruned   int `json:"pruned"`
}

// Result is one lookup's answer: every exact match (identical records
// may be split across groups by the SN criterion, so there can be more
// than one), or the top-k nearest candidates when no exact match exists.
type Result struct {
	Matches    []Match
	Candidates []Candidate
	Stats      Stats
}

func (s *Snapshot) groupInfo(gi int) GroupInfo {
	members := s.groups[gi]
	info := GroupInfo{
		ID:             gi,
		Size:           len(members),
		Representative: s.rids[s.reps[gi]],
		Members:        make([]int64, len(members)),
		Indexes:        members, // immutable; shared, never mutated
	}
	for i, idx := range members {
		info.Members[i] = s.rids[idx]
	}
	return info
}

// Lookup answers one point query. If any indexed record's key equals the
// query record's key, all such records are returned as Matches and no
// candidate scan runs. Otherwise the k nearest records by the snapshot's
// metric are returned in ascending (distance, index) order, each with
// its exactly-verified distance — see the package comment for why the
// prefilter cannot change this answer. k <= 0 skips the candidate scan.
func (s *Snapshot) Lookup(record []string, k int) Result {
	var res Result
	key := strutil.JoinFields(record)
	if hits, ok := s.byKey[key]; ok {
		res.Matches = make([]Match, len(hits))
		for i, idx := range hits {
			res.Matches[i] = Match{Index: idx, RID: s.rids[idx], Group: s.groupInfo(s.groupOf[idx])}
		}
		return res
	}
	if k <= 0 || len(s.keys) == 0 {
		return res
	}
	if k > len(s.keys) {
		k = len(s.keys)
	}

	// best is the current top-k, ascending (dist, idx); worst = last.
	best := make([]scored, 0, k)
	insert := func(c scored) {
		pos := sort.Search(len(best), func(i int) bool {
			if best[i].dist != c.dist {
				return best[i].dist > c.dist
			}
			return best[i].idx > c.idx
		})
		if len(best) < k {
			best = append(best, scored{})
		} else if pos == len(best) {
			return
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = c
	}

	res.Stats.Scanned = len(s.keys)
	if s.divisor == 0 {
		// No certified bound for this metric: verify everything.
		for i, rk := range s.keys {
			insert(scored{idx: i, dist: s.metric.Distance(key, rk)})
		}
		res.Stats.Verified = len(s.keys)
	} else {
		s.scanPruned(key, k, &res.Stats, &best, insert)
	}

	res.Candidates = make([]Candidate, len(best))
	for i, c := range best {
		res.Candidates[i] = Candidate{
			Index:    c.idx,
			RID:      s.rids[c.idx],
			Distance: c.dist,
			Group:    s.groupInfo(s.groupOf[c.idx]),
		}
	}
	return res
}

// scored is one verified candidate during a lookup's top-k selection.
type scored struct {
	idx  int
	dist float64
}

// boundBuckets quantizes lower bounds for the counting sort of the
// pruned scan; bounds live in [0, 1] for the certified metrics, and
// anything >= 1 lands in the last bucket.
const boundBuckets = 256

// scanPruned is the prefiltered candidate scan: a bit-parallel signature
// pass computes every record's certified lower bound (the larger of the
// gram-damage bound and the free length-difference bound — each edit
// changes the length by at most one, for OSA too), a counting sort
// orders records by bound, and exact verification proceeds in that order
// so the running k-th best distance tightens as fast as possible.
//
// Two mechanisms prune, both provably lossless:
//
//   - A record is skipped outright only when its lower bound strictly
//     exceeds the current worst retained distance; bound <= true
//     distance proves it cannot displace any retained candidate,
//     including on (distance, index) ties, which a strict comparison
//     leaves to verification.
//   - Verification itself is banded: the bounded kernels compute the
//     exact edit count only up to cap = floor(worst*denom)+1. Any true
//     distance at most worst has edit count at most that cap (ties
//     included), so every candidate that could enter the answer gets its
//     exact distance; a kernel overflow proves distance > worst.
func (s *Snapshot) scanPruned(key string, k int, st *Stats, best *[]scored, insert func(scored)) {
	qsig := nnindex.NewSignature(key)
	qr := []rune(strutil.Normalize(key))
	qlen := len(qr)
	n := len(s.keys)

	sc := s.getScratch()
	defer s.scratch.Put(sc)

	// Counting sort by quantized bound: one pass to bucket, one prefix
	// sum, one placement pass — pooled flat buffers, no per-bucket
	// slices.
	lbs := sc.lbs
	bucketOf := sc.bucketOf
	var counts [boundBuckets + 1]int32
	for i := 0; i < n; i++ {
		qm, rm := nnindex.MissingBitsFlat(s.sigs, i, qsig)
		m := qm
		if rm > m {
			m = rm
		}
		denom := qlen
		if s.lens[i] > denom {
			denom = s.lens[i]
		}
		lb := 0.0
		if denom > 0 {
			edits := (m + s.divisor - 1) / s.divisor // ceil: signature bound
			if ld := qlen - s.lens[i]; ld > edits {
				edits = ld // length bound: >= |la-lb| edits
			} else if -ld > edits {
				edits = -ld
			}
			lb = float64(edits) / float64(denom)
		}
		lbs[i] = lb
		b := int(lb * boundBuckets)
		if b >= boundBuckets {
			b = boundBuckets - 1
		}
		bucketOf[i] = uint8(b)
		counts[b+1]++
	}
	for b := 1; b <= boundBuckets; b++ {
		counts[b] += counts[b-1]
	}
	order := sc.order
	next := counts // array copy: running placement cursors
	for i := 0; i < n; i++ {
		b := bucketOf[i]
		order[next[b]] = int32(i)
		next[b]++
	}

	osa := s.divisor == nnindex.SigQ+1
	for pos := 0; pos < n; pos++ {
		i := int(order[pos])
		if len(*best) == k {
			worst := (*best)[k-1].dist
			// Bounds arrive in ascending bucket order; once a bucket's
			// floor exceeds the retained worst, nothing later qualifies.
			if float64(bucketOf[i])/boundBuckets > worst {
				st.Pruned += n - pos
				return
			}
			if lbs[i] > worst {
				st.Pruned++
				continue
			}
		}
		denom := qlen
		if s.lens[i] > denom {
			denom = s.lens[i]
		}
		st.Verified++
		if denom == 0 {
			insert(scored{idx: i, dist: 0})
			continue
		}
		maxEd := denom // edit count never exceeds the longer length
		if len(*best) == k {
			if c := int((*best)[k-1].dist*float64(denom)) + 1; c < maxEd {
				maxEd = c
			}
		}
		var d int
		if osa {
			d = distance.BoundedOSARunes(qr, s.nrunes[i], maxEd, &sc.ed)
		} else {
			d = distance.BoundedLevenshteinRunes(qr, s.nrunes[i], maxEd, &sc.ed)
		}
		if d > maxEd {
			continue // proven further than the retained worst
		}
		insert(scored{idx: i, dist: float64(d) / float64(denom)})
	}
}

package querysnap

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// benchSnapshot builds a snapshot over n synthetic records with a
// singleton partition — group structure doesn't affect lookup cost, only
// the scan does, so this isolates the query path.
func benchSnapshot(b *testing.B, n int, metric string) (*Snapshot, [][]string) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	recs := make([][]string, n)
	groups := make([][]int, n)
	reps := make([]int, n)
	rids := make([]int64, n)
	for i := range recs {
		recs[i] = []string{fmt.Sprintf("%s %s %04d", randWord(r), randWord(r), i)}
		groups[i] = []int{i}
		reps[i] = i
		rids[i] = int64(i + 1)
	}
	snap, err := Build(Config{
		Dataset: "bench", Seq: 1, JobID: "bench", Built: time.Now(),
		Records: recs, RIDs: rids, Groups: groups, Reps: reps,
		Params: Params{Mode: "size", K: 4, C: 2, Metric: metric},
	})
	if err != nil {
		b.Fatal(err)
	}
	return snap, recs
}

// BenchmarkQuerySnapshot measures the two lookup paths: Hit is the
// exact-match hash lookup; Miss is the prefiltered candidate scan. The
// small sizes run everywhere; the 10k sizes (the acceptance-target scale)
// run only with QUERYSNAP_BENCH=1 so routine test runs stay fast.
func BenchmarkQuerySnapshot(b *testing.B) {
	sizes := []int{1000}
	if os.Getenv("QUERYSNAP_BENCH") != "" {
		sizes = append(sizes, 10000, 50000)
	}
	for _, n := range sizes {
		snap, recs := benchSnapshot(b, n, "ed")
		r := rand.New(rand.NewSource(7))
		misses := make([][]string, 256)
		for i := range misses {
			misses[i] = []string{mutate(r, recs[r.Intn(n)][0])}
		}
		b.Run(fmt.Sprintf("Hit/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := snap.Lookup(recs[i%n], 5)
				if len(res.Matches) == 0 {
					b.Fatal("expected hit")
				}
			}
		})
		b.Run(fmt.Sprintf("Miss/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap.Lookup(misses[i%len(misses)], 5)
			}
		})
	}
}

package fuzzydup

import (
	"strconv"

	"fuzzydup/internal/dataset"
)

// orgRecords generates an Org relation for the size-sweep benchmark.
func orgRecords(n int) ([]Record, error) {
	ds := dataset.Org(dataset.Config{Size: n, Seed: 3})
	records := make([]Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = Record(r)
	}
	return records, nil
}

func itoa(n int) string { return strconv.Itoa(n) }

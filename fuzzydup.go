package fuzzydup

import (
	"context"
	"fmt"
	"time"

	"fuzzydup/internal/baseline"
	"fuzzydup/internal/blocked"
	"fuzzydup/internal/blocking"
	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/nnindex"
	"fuzzydup/internal/obs"
	"fuzzydup/internal/strutil"
)

// Record is one tuple of the relation being deduplicated: its attribute
// values in order. Fields are joined (space-separated, empties skipped)
// into the string the distance functions compare.
type Record []string

// Metric selects a built-in distance function.
type Metric string

// Built-in metrics. All are symmetric with range [0, 1].
const (
	// MetricEdit is normalized edit distance ("ed" in the paper).
	MetricEdit Metric = "ed"
	// MetricFMS is the symmetric fuzzy match similarity, combining
	// per-token edit distance with IDF weights computed over the relation.
	MetricFMS Metric = "fms"
	// MetricCosine is token cosine distance with IDF weights.
	MetricCosine Metric = "cosine"
	// MetricJaccard is q-gram Jaccard distance.
	MetricJaccard Metric = "jaccard"
	// MetricJaro is Jaro distance.
	MetricJaro Metric = "jaro"
	// MetricJaroWinkler is Jaro-Winkler distance (prefix-boosted Jaro).
	MetricJaroWinkler Metric = "jaro-winkler"
	// MetricMongeElkan is the Monge-Elkan hybrid (token-level best match
	// under Jaro-Winkler, averaged).
	MetricMongeElkan Metric = "monge-elkan"
	// MetricSoftTFIDF is soft TF-IDF (IDF-weighted cosine with fuzzy token
	// matching), with IDF weights computed over the relation.
	MetricSoftTFIDF Metric = "soft-tfidf"
	// MetricSoundex is token-wise Soundex distance — coarse, phonetic.
	MetricSoundex Metric = "soundex"
	// MetricDamerau is normalized optimal-string-alignment distance
	// (Levenshtein plus adjacent transpositions).
	MetricDamerau Metric = "damerau"
)

// Agg selects the sparse-neighborhood aggregation function.
type Agg string

// Aggregation functions (paper, Figure 7).
const (
	// AggMax requires every member's neighborhood growth below c.
	AggMax Agg = "max"
	// AggAvg requires the mean neighborhood growth below c.
	AggAvg Agg = "avg"
	// AggMax2 requires the second-largest growth below c.
	AggMax2 Agg = "max2"
)

// Index selects the nearest-neighbor index backing phase 1.
type Index string

// Available indexes.
const (
	// IndexExact scans the whole relation per query — exact for any
	// metric, O(n) per lookup. The default.
	IndexExact Index = "exact"
	// IndexQGram is the probabilistic disk-backed q-gram inverted index
	// (the paper's setting); recommended beyond ~10,000 records.
	IndexQGram Index = "qgram"
	// IndexVPTree is a vantage-point tree — exact for true metrics
	// (Jaccard), near-exact for normalized edit distance, and safe for
	// parallel queries.
	IndexVPTree Index = "vptree"
	// IndexMinHash is MinHash-LSH over q-gram shingles — probabilistic,
	// strongest when the metric is (or correlates with) Jaccard.
	IndexMinHash Index = "minhash"
	// IndexPruned is the signature-prefiltered exact scan: multi-index
	// Hamming retrieval over 256-bit q-gram signatures plus certified
	// lower bounds skip most metric calls while answering every query
	// bit-for-bit like IndexExact. The prefilter engages for the
	// edit-family metrics ("ed", "damerau") and transparently falls back
	// to the exact scan elsewhere, so it is always safe to select.
	IndexPruned Index = "pruned"
)

// Options configures a Deduper. The zero value selects edit distance, the
// exact index, p = 2, and the max aggregation.
type Options struct {
	// Metric selects a built-in distance function (default MetricEdit).
	// Ignored when CustomMetric is set.
	Metric Metric
	// CustomMetric plugs in a bespoke symmetric distance in [0, 1]. The
	// CS/SN criteria are orthogonal to the distance choice, so any domain
	// distance works.
	CustomMetric func(a, b string) float64
	// Index selects the nearest-neighbor index (default IndexExact).
	Index Index
	// Approximate is a legacy alias: true selects IndexQGram when Index
	// is unset.
	Approximate bool
	// P is the neighborhood growth-sphere factor (default 2, the paper's
	// setting).
	P float64
	// Agg is the SN aggregation function (default AggMax).
	Agg Agg
	// MinimalCompact applies the Section 4.4.2 post-processing, splitting
	// groups that are mergers of disjoint smaller compact sets.
	MinimalCompact bool
	// Exclude is a constraining predicate (Section 4.4.1): record pairs
	// for which it returns true are never grouped together.
	Exclude func(a, b int) bool
	// UseSQL runs the partitioning phase as SQL against the embedded
	// relational engine, reproducing the paper's architecture. The result
	// is identical to the in-memory path; this exists for inspection and
	// for exercising the full stack.
	UseSQL bool
	// Parallel, when > 1, fans phase-1 lookups across that many
	// goroutines. Only effective with the exact index (the default); the
	// output is identical to a serial run.
	Parallel int
	// Tracer, when non-nil, receives hierarchical spans for every solve:
	// a "dedup.solve" root with "phase1" and "phase2" children carrying
	// wall-clock durations and work counters (lookups, index probes,
	// distance calls, rejection reasons). The same numbers are available
	// without a tracer via Report / LastReport. On the blocked path the
	// root instead carries one "blocked" child with the pipeline counters.
	Tracer *obs.Tracer
	// Blocking, when non-nil, routes every solve through the sharded
	// blocked pipeline: the corpus is partitioned into candidate blocks,
	// blocks are solved concurrently, and a boundary guard merges and
	// re-solves any block whose certificate radii reach a foreign record —
	// so the partition returned is bit-for-bit the monolithic one.
	// Requires the exact index and is incompatible with UseSQL. Note that
	// the blocked path does not use the phase-1 cache: each solve
	// recomputes its per-block neighbor lists.
	Blocking *BlockingOptions
}

// BlockingOptions tunes the blocked solve selected by Options.Blocking.
// The zero value is a working default: blocks seeded from a 4-character
// normalized prefix and the first token's Soundex code, a window-8
// sorted-neighborhood canopy pass, the exhaustive boundary guard, and
// block solves run at Options.Parallel.
//
// In the blocked mode RunReport.Phase1 is the wall-clock of the
// (parallel) block solves and Phase2 is everything else — seeding,
// guarding, merging, and reconciliation.
type BlockingOptions struct {
	// Parallel is the block-solve worker-pool size; 0 inherits
	// Options.Parallel. Parallelism never changes the output.
	Parallel int
	// KeyPrefixLen is the length of the normalized-prefix blocking key
	// (default 4).
	KeyPrefixLen int
	// Window is the sorted-neighborhood window width feeding the
	// distance-gated canopy pass (default 8; values below 2 disable the
	// pass).
	Window int
	// PivotGuard opts into the pivot-pruned boundary guard instead of the
	// default exhaustive foreign scan. The pruning is only sound for
	// metrics satisfying the triangle inequality (Jaccard does; normalized
	// edit distance is not guaranteed to), which is why it is opt-in.
	PivotGuard bool
	// MaxRounds bounds the solve/guard/merge loop (default 32); exceeding
	// it falls back to one full-corpus solve, which is never wrong — only
	// no faster than the monolithic path.
	MaxRounds int
	// OnBlockSolved, when non-nil, is called once per block solve with the
	// block size and solve duration — the hook dedupd feeds its per-block
	// duration histogram from. Calls are sequential.
	OnBlockSolved func(size int, d time.Duration)
	// Restrict, when non-nil, limits the solve to the blocks containing
	// at least one record with Restrict(id) true (a restricted blocked
	// solve — see blocked.Options.Restrict). The returned partition then
	// holds only those blocks' groups, but each of them is bit-for-bit
	// the group the unrestricted solve would produce: the boundary guard
	// still certifies active blocks against the whole corpus. Use
	// Deduper.LastCovered to learn which records the partition covers.
	// This is the hook SQL predicate pushdown on blocking-key columns
	// rides on.
	Restrict func(id int) bool
}

// strategy materializes the blocking strategy the options describe.
func (o *BlockingOptions) strategy() blocked.Strategy {
	pre := o.KeyPrefixLen
	if pre <= 0 {
		pre = 4
	}
	strat := blocked.Strategy{
		Keys: []blocking.KeyFunc{blocking.FirstNChars(pre), blocking.SoundexFirstToken()},
	}
	w := o.Window
	if w == 0 {
		w = 8
	}
	if w >= 2 {
		strat.Windows = []blocked.Window{{W: w, Order: blocking.NormalizedOrder()}}
	}
	return strat
}

// RunReport summarizes the work of a Deduper's solves: phase timings,
// comparison counts, partition statistics, and phase-1 cache behaviour.
// Deduper.Report returns the accumulation across all solves so far;
// Deduper.LastReport the most recent solve alone.
//
// DistanceCalls follows CacheStats semantics: a solve served from the
// phase-1 cache computes no new distances, so a K/θ/c sweep's distance
// count grows only on the CacheComputes points, not the CacheHits ones.
type RunReport struct {
	// Solves is the number of completed solve calls covered.
	Solves int `json:"solves"`
	// Phase1 and Phase2 are the wall-clock durations of the
	// nearest-neighbor and partitioning phases (JSON: nanoseconds).
	Phase1 time.Duration `json:"phase1_ns"`
	Phase2 time.Duration `json:"phase2_ns"`
	// Lookups is the number of phase-1 tuple lookups performed;
	// IndexProbes the number of index probe calls they issued;
	// DistanceCalls the number of metric invocations they cost.
	Lookups       int64 `json:"lookups"`
	IndexProbes   int64 `json:"index_probes"`
	DistanceCalls int64 `json:"distance_calls"`
	// Groups is the partition size (singletons included),
	// DuplicateGroups the groups of size >= 2, Splits the groups
	// decomposed by the minimal-compact post-processing.
	Groups          int `json:"groups"`
	DuplicateGroups int `json:"duplicate_groups"`
	Splits          int `json:"splits"`
	// RejectedCompact / RejectedSN / RejectedExcluded count candidate
	// groups rejected by the compact-set check, the sparse-neighborhood
	// check, and the constraining predicate.
	RejectedCompact  int `json:"rejected_compact"`
	RejectedSN       int `json:"rejected_sn"`
	RejectedExcluded int `json:"rejected_excluded"`
	// CacheComputes / CacheHits are the phase-1 cache outcomes, the same
	// counters CacheStats reports.
	CacheComputes int `json:"phase1_cache_computes"`
	CacheHits     int `json:"phase1_cache_hits"`
	// BlocksSolved / BoundaryResolves instrument the blocked path
	// (Options.Blocking): block solves across all guard rounds, and the
	// share of them triggered by boundary merges. Both stay zero on the
	// monolithic path.
	BlocksSolved     int `json:"blocks_solved,omitempty"`
	BoundaryResolves int `json:"boundary_resolves,omitempty"`
	// Phase1Pruned / Phase1Candidates / Phase1Fallbacks instrument the
	// signature prefilter (IndexPruned, monolithic or blocked): records
	// excluded by a certified bound without a metric call, records
	// exactly verified, and queries that fell back wholesale to the
	// exact scan. All zero for other indexes.
	Phase1Pruned     int64 `json:"phase1_pruned,omitempty"`
	Phase1Candidates int64 `json:"phase1_candidates,omitempty"`
	Phase1Fallbacks  int64 `json:"phase1_fallbacks,omitempty"`
}

// add accumulates a per-solve delta into a cumulative report.
func (r *RunReport) add(d RunReport) {
	r.Solves += d.Solves
	r.Phase1 += d.Phase1
	r.Phase2 += d.Phase2
	r.Lookups += d.Lookups
	r.IndexProbes += d.IndexProbes
	r.DistanceCalls += d.DistanceCalls
	r.Groups += d.Groups
	r.DuplicateGroups += d.DuplicateGroups
	r.Splits += d.Splits
	r.RejectedCompact += d.RejectedCompact
	r.RejectedSN += d.RejectedSN
	r.RejectedExcluded += d.RejectedExcluded
	r.CacheComputes += d.CacheComputes
	r.CacheHits += d.CacheHits
	r.BlocksSolved += d.BlocksSolved
	r.BoundaryResolves += d.BoundaryResolves
	r.Phase1Pruned += d.Phase1Pruned
	r.Phase1Candidates += d.Phase1Candidates
	r.Phase1Fallbacks += d.Phase1Fallbacks
}

// String renders the report in the two-line per-phase form the dedup CLI
// prints under -stats.
func (r RunReport) String() string {
	s := fmt.Sprintf(
		"phase1 %v (lookups %d, index probes %d, distance calls %d, cache %d computes / %d hits)\n"+
			"phase2 %v (groups %d, duplicates %d, splits %d; rejected %d compact / %d sn / %d excluded)",
		r.Phase1.Round(time.Microsecond), r.Lookups, r.IndexProbes, r.DistanceCalls,
		r.CacheComputes, r.CacheHits,
		r.Phase2.Round(time.Microsecond), r.Groups, r.DuplicateGroups, r.Splits,
		r.RejectedCompact, r.RejectedSN, r.RejectedExcluded)
	if r.BlocksSolved > 0 {
		s += fmt.Sprintf("\nblocked (block solves %d, boundary re-solves %d)",
			r.BlocksSolved, r.BoundaryResolves)
	}
	if r.Phase1Pruned > 0 || r.Phase1Candidates > 0 || r.Phase1Fallbacks > 0 {
		s += fmt.Sprintf("\nprefilter (pruned %d, verified %d, fallbacks %d)",
			r.Phase1Pruned, r.Phase1Candidates, r.Phase1Fallbacks)
	}
	return s
}

// Deduper runs fuzzy duplicate elimination over a fixed set of records.
// It is not safe for concurrent use.
//
// Phase-1 results are cached across calls: a sweep over K or θ reuses the
// widest neighbor lists computed so far (top-K lists are prefixes of
// top-K' lists for K <= K', and θ-range lists truncate the same way), so
// only the first call at a new maximum pays for nearest-neighbor
// computation.
type Deduper struct {
	records   []Record
	keys      []string
	metric    distance.Metric
	counter   *distance.Counting // same metric, counted; indexes query through it
	index     nnindex.Index
	indexKind Index // resolved Options.Index (defaults applied)
	opts      Options

	cacheS *core.NNRelation // widest size-cut relation computed so far
	cacheD *core.NNRelation // widest diameter-cut relation computed so far

	cacheHits     int // phase-1 requests served from a cached relation
	cacheComputes int // phase-1 requests that ran ComputeNN

	report      RunReport // accumulated across solves
	lastReport  RunReport // most recent solve's delta
	lastCovered []bool    // restricted-solve coverage; nil = full coverage
}

// CacheStats reports how often the phase-1 cache answered an NN-relation
// request without recomputation. Parameter sweeps over K, θ, or c reuse
// the widest relation computed so far, so hits should dominate after the
// first solve of each cut family.
func (d *Deduper) CacheStats() (computes, hits int) {
	return d.cacheComputes, d.cacheHits
}

// Report returns the run report accumulated across every solve on this
// Deduper.
func (d *Deduper) Report() RunReport { return d.report }

// LastReport returns the most recent solve's report alone (all counters
// are that solve's deltas), which is what per-sweep-point monitoring
// wants.
func (d *Deduper) LastReport() RunReport { return d.lastReport }

// LastCovered reports which records the most recent solve's partition
// covers. It is nil after an unrestricted solve (every record is
// covered); after a solve with BlockingOptions.Restrict set it marks
// exactly the records whose groups appear in the returned partition —
// each such group identical to the unrestricted solve's.
func (d *Deduper) LastCovered() []bool { return d.lastCovered }

// New builds a Deduper over the records. IDF-weighted metrics compute
// their weights from these records.
func New(records []Record, opts Options) (*Deduper, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("fuzzydup: no records")
	}
	keys := make([]string, len(records))
	for i, r := range records {
		keys[i] = strutil.JoinFields(r)
	}
	var metric distance.Metric
	if opts.CustomMetric != nil {
		metric = distance.Func{MetricName: "custom", F: opts.CustomMetric}
	} else {
		m, err := distance.ByName(string(opts.Metric), keys)
		if err != nil {
			return nil, fmt.Errorf("fuzzydup: unknown metric %q", opts.Metric)
		}
		metric = m
	}
	// Every metric call — index probes, diagnostics, representatives —
	// goes through a counting wrapper so reports can state how many
	// distance computations the work cost.
	counter := distance.NewCounting(metric)
	kind := opts.Index
	if kind == "" {
		if opts.Approximate {
			kind = IndexQGram
		} else {
			kind = IndexExact
		}
	}
	if opts.Blocking != nil {
		// The blocked pipeline builds its own per-block phase-1 indexes
		// (exact, or signature-prefiltered for IndexPruned) and runs
		// partitioning in memory; neither an approximate global index
		// nor the SQL runner composes with it.
		if opts.UseSQL {
			return nil, fmt.Errorf("fuzzydup: Blocking is incompatible with UseSQL")
		}
		if kind != IndexExact && kind != IndexPruned {
			return nil, fmt.Errorf("fuzzydup: Blocking requires the exact or pruned index, not %q", kind)
		}
	}
	var index nnindex.Index
	switch kind {
	case IndexExact:
		index = nnindex.NewExact(keys, counter)
	case IndexPruned:
		px, err := nnindex.NewPruned(keys, counter, nnindex.PrunedConfig{})
		if err != nil {
			return nil, fmt.Errorf("fuzzydup: building index: %w", err)
		}
		index = px
	case IndexQGram:
		qg, err := nnindex.NewQGram(keys, counter, nnindex.QGramConfig{})
		if err != nil {
			return nil, fmt.Errorf("fuzzydup: building index: %w", err)
		}
		index = qg
	case IndexVPTree:
		index = nnindex.NewVPTree(keys, counter)
	case IndexMinHash:
		mh, err := nnindex.NewMinHash(keys, counter, nnindex.MinHashConfig{})
		if err != nil {
			return nil, fmt.Errorf("fuzzydup: building index: %w", err)
		}
		index = mh
	default:
		return nil, fmt.Errorf("fuzzydup: unknown index %q", kind)
	}
	return &Deduper{records: records, keys: keys, metric: counter, counter: counter, index: index, indexKind: kind, opts: opts}, nil
}

// Len returns the number of records.
func (d *Deduper) Len() int { return len(d.records) }

// Distance returns the configured metric's distance between two records
// by index.
func (d *Deduper) Distance(a, b int) float64 {
	return d.metric.Distance(d.keys[a], d.keys[b])
}

func (d *Deduper) agg() core.Agg { return aggOf(d.opts.Agg) }

func (d *Deduper) problem(cut core.Cut, c float64) core.Problem {
	return core.Problem{
		Cut:            cut,
		Agg:            d.agg(),
		C:              c,
		P:              d.opts.P,
		MinimalCompact: d.opts.MinimalCompact,
		Exclude:        d.opts.Exclude,
	}
}

// nnRelation returns the phase-1 relation for the cut, reusing and
// widening the per-family cache as needed. A cancelled ctx aborts an
// in-flight computation without poisoning the cache. When stats is
// non-nil it accumulates the lookup work of a cache miss (a hit does no
// phase-1 work and adds nothing).
func (d *Deduper) nnRelation(ctx context.Context, cut core.Cut, stats *core.Phase1Stats) (*core.NNRelation, error) {
	if cut.IsSize() {
		if d.cacheS == nil || d.cacheS.Cut.MaxSize < cut.MaxSize {
			rel, err := core.ComputeNN(d.index, core.Cut{MaxSize: cut.MaxSize}, d.growthP(), d.phase1Opts(ctx, stats))
			if err != nil {
				return nil, err
			}
			d.cacheS = rel
			d.cacheComputes++
		} else {
			d.cacheHits++
		}
		return d.cacheS.TruncateSize(cut.MaxSize), nil
	}
	if d.cacheD == nil || d.cacheD.Cut.Diameter < cut.Diameter {
		rel, err := core.ComputeNN(d.index, core.Cut{Diameter: cut.Diameter}, d.growthP(), d.phase1Opts(ctx, stats))
		if err != nil {
			return nil, err
		}
		d.cacheD = rel
		d.cacheComputes++
	} else {
		d.cacheHits++
	}
	rel := d.cacheD.TruncateDiameter(cut.Diameter)
	rel.Cut = cut // carry the size bound of a combined cut into phase 2
	return rel, nil
}

func (d *Deduper) solve(ctx context.Context, prob core.Problem) (Groups, error) {
	if d.opts.Blocking != nil {
		return d.solveBlocked(ctx, prob)
	}
	span := d.opts.Tracer.Start("dedup.solve")
	defer span.End()

	var delta RunReport
	dist0 := d.counter.Calls()
	computes0, hits0 := d.cacheComputes, d.cacheHits

	var p1 core.Phase1Stats
	p1Span := span.Child("phase1")
	t0 := time.Now()
	rel, err := d.nnRelation(ctx, prob.Cut, &p1)
	delta.Phase1 = time.Since(t0)
	delta.Lookups = p1.Lookups.Load()
	delta.IndexProbes = p1.Probes.Load()
	delta.Phase1Pruned = p1.Pruned.Load()
	delta.Phase1Candidates = p1.Candidates.Load()
	delta.Phase1Fallbacks = p1.Fallbacks.Load()
	delta.CacheComputes = d.cacheComputes - computes0
	delta.CacheHits = d.cacheHits - hits0
	p1Span.Add("lookups", delta.Lookups)
	p1Span.Add("index_probes", delta.IndexProbes)
	p1Span.Add("cache_hits", int64(delta.CacheHits))
	p1Span.End()
	if err != nil {
		return nil, err
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}

	var pstats core.PartitionStats
	p2Span := span.Child("phase2")
	t1 := time.Now()
	var groups Groups
	if d.opts.UseSQL {
		r := core.NewSQLRunner()
		if err := r.LoadNNRelation(rel); err != nil {
			return nil, err
		}
		if err := r.BuildCSPairs(); err != nil {
			return nil, err
		}
		groups, err = r.Partition(prob)
		if err != nil {
			return nil, err
		}
		// The SQL runner does not expose candidate-level counters; report
		// the partition shape, which it does produce.
		pstats.Groups = len(groups)
		for _, g := range groups {
			if len(g) >= 2 {
				pstats.Duplicates++
			}
		}
	} else {
		groups, err = core.PartitionWithStats(rel, prob, &pstats)
		if err != nil {
			return nil, err
		}
	}
	delta.Phase2 = time.Since(t1)
	delta.Groups = pstats.Groups
	delta.DuplicateGroups = pstats.Duplicates
	delta.Splits = pstats.Splits
	delta.RejectedCompact = pstats.RejectedCompact
	delta.RejectedSN = pstats.RejectedSN
	delta.RejectedExcluded = pstats.RejectedExcluded
	delta.DistanceCalls = d.counter.Calls() - dist0
	delta.Solves = 1
	p2Span.Add("groups", int64(pstats.Groups))
	p2Span.Add("duplicate_groups", int64(pstats.Duplicates))
	p2Span.Add("splits", int64(pstats.Splits))
	p2Span.End()
	span.Add("distance_calls", delta.DistanceCalls)

	d.lastReport = delta
	d.report.add(delta)
	d.lastCovered = nil // monolithic solves always cover every record
	return groups, nil
}

// solveBlocked is the Options.Blocking solve path: it hands the whole
// problem to the blocked pipeline and maps its Result into the same
// report and span structure the monolithic path produces. Phase1 is the
// block-solve wall clock, Phase2 the seeding/guard/merge remainder.
func (d *Deduper) solveBlocked(ctx context.Context, prob core.Problem) (Groups, error) {
	span := d.opts.Tracer.Start("dedup.solve")
	defer span.End()

	var delta RunReport
	dist0 := d.counter.Calls()

	bo := d.opts.Blocking
	par := bo.Parallel
	if par == 0 {
		par = d.opts.Parallel
	}
	var p1 core.Phase1Stats
	bSpan := span.Child("blocked")
	res, err := blocked.Solve(d.keys, d.metric, prob, bo.strategy(), blocked.Options{
		Parallel:      par,
		Exhaustive:    !bo.PivotGuard,
		MaxRounds:     bo.MaxRounds,
		Ctx:           ctx,
		Stats:         &p1,
		OnBlockSolved: bo.OnBlockSolved,
		Restrict:      bo.Restrict,
		Prefilter:     d.indexKind == IndexPruned,
	})
	if err != nil {
		bSpan.End()
		return nil, err
	}
	bSpan.Add("blocks", int64(res.Blocks))
	bSpan.Add("blocks_solved", int64(res.BlocksSolved))
	bSpan.Add("boundary_resolves", int64(res.BoundaryResolves))
	bSpan.Add("guard_probes", res.GuardProbes)
	if res.ForcedFull {
		bSpan.Add("forced_full", 1)
	}
	bSpan.End()

	delta.Phase1 = res.SolveTime
	delta.Phase2 = res.MergeTime
	delta.Lookups = p1.Lookups.Load()
	delta.IndexProbes = p1.Probes.Load()
	delta.Phase1Pruned = p1.Pruned.Load()
	delta.Phase1Candidates = p1.Candidates.Load()
	delta.Phase1Fallbacks = p1.Fallbacks.Load()
	delta.Groups = res.Partition.Groups
	delta.DuplicateGroups = res.Partition.Duplicates
	delta.Splits = res.Partition.Splits
	delta.RejectedCompact = res.Partition.RejectedCompact
	delta.RejectedSN = res.Partition.RejectedSN
	delta.RejectedExcluded = res.Partition.RejectedExcluded
	delta.BlocksSolved = res.BlocksSolved
	delta.BoundaryResolves = res.BoundaryResolves
	delta.DistanceCalls = d.counter.Calls() - dist0
	delta.Solves = 1
	span.Add("distance_calls", delta.DistanceCalls)

	d.lastReport = delta
	d.report.add(delta)
	if bo.Restrict != nil {
		d.lastCovered = res.Covered
	} else {
		d.lastCovered = nil
	}
	return Groups(res.Groups), nil
}

// Groups is a partition of the record indices: every record appears in
// exactly one group; groups of size >= 2 are the detected duplicate sets.
type Groups [][]int

// Duplicates returns only the non-trivial groups (size >= 2).
func (g Groups) Duplicates() [][]int {
	var out [][]int
	for _, grp := range g {
		if len(grp) >= 2 {
			out = append(out, grp)
		}
	}
	return out
}

// Pairs returns every detected duplicate pair (a < b).
func (g Groups) Pairs() [][2]int {
	var out [][2]int
	for _, grp := range g {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				out = append(out, [2]int{grp[i], grp[j]})
			}
		}
	}
	return out
}

// GroupsBySize solves the DE_S(K) problem: partition the records into the
// minimum number of compact, sparse-neighborhood groups of size at most
// maxSize, with SN threshold c (> 1).
func (d *Deduper) GroupsBySize(maxSize int, c float64) (Groups, error) {
	return d.GroupsBySizeCtx(context.Background(), maxSize, c)
}

// GroupsBySizeCtx is GroupsBySize with cancellation: ctx is polled between
// phase-1 index lookups (the dominant cost), and a cancelled ctx aborts
// the run with ctx.Err() without corrupting the phase-1 cache.
func (d *Deduper) GroupsBySizeCtx(ctx context.Context, maxSize int, c float64) (Groups, error) {
	return d.solve(ctx, d.problem(core.Cut{MaxSize: maxSize}, c))
}

// GroupsByDiameter solves the DE_D(θ) problem: partition the records into
// the minimum number of compact, sparse-neighborhood groups whose maximum
// pairwise distance stays below theta, with SN threshold c (> 1).
func (d *Deduper) GroupsByDiameter(theta, c float64) (Groups, error) {
	return d.GroupsByDiameterCtx(context.Background(), theta, c)
}

// GroupsByDiameterCtx is GroupsByDiameter with cancellation; see
// GroupsBySizeCtx.
func (d *Deduper) GroupsByDiameterCtx(ctx context.Context, theta, c float64) (Groups, error) {
	return d.solve(ctx, d.problem(core.Cut{Diameter: theta}, c))
}

// GroupsBySizeAndDiameter applies both cut specifications together
// (Section 3's combined form): groups of at most maxSize records whose
// maximum pairwise distance stays below theta, with SN threshold c (> 1).
func (d *Deduper) GroupsBySizeAndDiameter(maxSize int, theta, c float64) (Groups, error) {
	return d.GroupsBySizeAndDiameterCtx(context.Background(), maxSize, theta, c)
}

// GroupsBySizeAndDiameterCtx is GroupsBySizeAndDiameter with cancellation;
// see GroupsBySizeCtx.
func (d *Deduper) GroupsBySizeAndDiameterCtx(ctx context.Context, maxSize int, theta, c float64) (Groups, error) {
	return d.solve(ctx, d.problem(core.Cut{MaxSize: maxSize, Diameter: theta}, c))
}

// SingleLinkage runs the global-threshold baseline the paper compares
// against: connected components of the threshold graph at theta.
func (d *Deduper) SingleLinkage(theta float64) (Groups, error) {
	rel, err := core.ComputeNN(d.index, core.Cut{Diameter: theta}, core.DefaultP, d.phase1Opts(context.Background(), nil))
	if err != nil {
		return nil, err
	}
	lists := make([][]nnindex.Neighbor, len(rel.Rows))
	for i, row := range rel.Rows {
		lists[i] = row.NNList
	}
	return baseline.SingleLinkage(d.Len(), lists, theta), nil
}

// Explanation describes how the framework's criteria see a candidate
// pair: their distance, whether they are mutual nearest neighbors (the
// entry condition for any duplicate group), and their neighborhood
// growths (a pair passes SN(max, c) iff MaxNG < c). The structural
// criteria make every grouping decision inspectable — no opaque score.
type Explanation = core.PairExplanation

// Explain evaluates the pair diagnostics for records a and b, considering
// each record's first k nearest neighbors.
func (d *Deduper) Explain(a, b, k int) Explanation {
	e := core.ExplainPair(d.index, a, b, k, d.opts.P)
	// The public Deduper always knows the true distance.
	e.Distance = d.Distance(a, b)
	return e
}

// EstimateC derives the sparse-neighborhood threshold c from an estimate
// of the fraction of records that are duplicates (paper, Section 4.3):
// the least neighborhood-growth value at which the cumulative growth
// distribution spikes near the dupFraction-percentile.
func (d *Deduper) EstimateC(dupFraction float64) (float64, error) {
	rel, err := d.nnRelation(context.Background(), core.Cut{MaxSize: 5}, nil)
	if err != nil {
		return 0, err
	}
	return core.EstimateSNThreshold(rel.NGValues(), dupFraction, core.EstimateOptions{})
}

// NeighborhoodGrowths returns ng(v) for every record — the diagnostic the
// Section 4.3 estimator and the SN criterion are built on.
func (d *Deduper) NeighborhoodGrowths() ([]int, error) {
	rel, err := d.nnRelation(context.Background(), core.Cut{MaxSize: 5}, nil)
	if err != nil {
		return nil, err
	}
	return rel.NGValues(), nil
}

func (d *Deduper) growthP() float64 {
	if d.opts.P == 0 {
		return core.DefaultP
	}
	return d.opts.P
}

// phase1Opts derives the phase-1 options from the Deduper's configuration.
func (d *Deduper) phase1Opts(ctx context.Context, stats *core.Phase1Stats) core.Phase1Options {
	return core.Phase1Options{Parallel: d.opts.Parallel, Ctx: ctx, Stats: stats}
}

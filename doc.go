// Package fuzzydup detects fuzzy duplicates — distinct tuples that
// represent the same real-world entity — in a relation, implementing the
// algorithm of Chaudhuri, Ganti, and Motwani, "Robust Identification of
// Fuzzy Duplicates" (ICDE 2005).
//
// Unlike global-threshold approaches (single-linkage clustering over a
// threshold graph), which cannot distinguish true duplicates from
// confusable series of distinct entities, this package groups tuples only
// when they satisfy two local structural criteria:
//
//   - the compact set (CS) criterion: a group must be a set of mutual
//     nearest neighbors — every member closer to every other member than
//     to anything outside, and
//   - the sparse neighborhood (SN) criterion: every member's local
//     neighborhood (a sphere of twice its nearest-neighbor distance) must
//     contain few tuples.
//
// # Quick start
//
//	records := []fuzzydup.Record{
//	    {"The Doors", "LA Woman"},
//	    {"Doors", "LA Woman"},
//	    {"Aaliyah", "Are You Ready"},
//	}
//	d, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricEdit})
//	if err != nil { ... }
//	groups, err := d.GroupsBySize(3, 4) // DE_S(K=3) with SN threshold c=4
//
// GroupsBySize solves the DE_S(K) formulation (duplicate groups of at most
// K tuples); GroupsByDiameter solves DE_D(θ) (groups of diameter below θ).
// When the sparse-neighborhood threshold c is hard to pick, EstimateC
// derives it from an estimate of the fraction of duplicate tuples
// (Section 4.3 of the paper). SingleLinkage provides the global-threshold
// baseline for comparison.
//
// Long-running callers (servers, batch pipelines) should prefer the
// context-aware variants — GroupsBySizeCtx, GroupsByDiameterCtx, and
// GroupsBySizeAndDiameterCtx: the context is polled between phase-1
// index lookups (the dominant cost), so cancelling it stops the
// computation promptly without corrupting the Deduper's phase-1 cache.
// CacheStats reports how often that cache served a K/θ/c parameter sweep
// without recomputation.
//
// The heavy lifting lives in internal packages: distance functions
// (internal/distance), exact and probabilistic nearest-neighbor indexes
// (internal/nnindex), the two-phase DE algorithm (internal/core), an
// embedded relational engine that can run the partitioning phase as SQL,
// reproducing the paper's client-over-database architecture
// (internal/sqldb), and the full experiment harness regenerating every
// figure of the paper's evaluation (internal/experiments).
package fuzzydup

// Command dedupstat is a top-style live view of a running dedupd: it
// polls GET /metrics?format=prometheus, diffs consecutive scrapes, and
// renders one screen of rates and latencies — overall and per-endpoint
// qps with p50/p99 (estimated from the histogram bucket deltas), the
// phase-1 cache hit rate, WAL fsync latency, query snapshot staleness,
// the slow-op count, and Go runtime stats.
//
// Usage:
//
//	dedupstat -addr http://127.0.0.1:8080 -interval 2s
//
// By default the screen is cleared between frames like top; -plain
// appends frames instead (for logs and scripts), and -count bounds the
// number of frames rendered (0 runs until interrupted). Rates need two
// scrapes, so the first frame appears one interval after startup.
//
// Against a coordinator node, -cluster appends a fleet section: the
// cluster headline (workers alive, reassignments, local fallbacks, the
// rolled-up solve total) plus one row per worker with its liveness,
// blocks solved, solve rate, and remote solve round-trip quantiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fuzzydup/internal/obs/promtext"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dedupstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dedupstat", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "dedupd base URL")
		interval = fs.Duration("interval", 2*time.Second, "time between scrapes")
		count    = fs.Int("count", 0, "frames to render before exiting (0 = forever)")
		plain    = fs.Bool("plain", false, "append frames instead of clearing the screen")
		clusterV = fs.Bool("cluster", false, "append the coordinator's per-worker cluster table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	url := strings.TrimSuffix(*addr, "/") + "/metrics?format=prometheus"
	prev, err := fetch(client, url)
	if err != nil {
		return err
	}
	for frame := 1; *count == 0 || frame <= *count; frame++ {
		time.Sleep(*interval)
		cur, err := fetch(client, url)
		if err != nil {
			return err
		}
		if !*plain {
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		render(out, *addr, frame, prev, cur)
		if *clusterV {
			renderCluster(out, prev, cur)
		}
		prev = cur
	}
	return nil
}

// scrape is one parsed exposition plus when it was taken.
type scrape struct {
	t        time.Time
	families map[string]promtext.Family
}

func fetch(client *http.Client, url string) (*scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	families, err := promtext.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", url, err)
	}
	s := &scrape{t: time.Now(), families: make(map[string]promtext.Family, len(families))}
	for _, f := range families {
		s.families[f.Name] = f
	}
	return s, nil
}

// value returns the sample of a counter or gauge family matching the
// given labels exactly on the named keys (other labels are ignored).
func (s *scrape) value(name string, labels map[string]string) float64 {
	f, ok := s.families[name]
	if !ok {
		return 0
	}
	for _, sm := range f.Samples {
		if sm.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if sm.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return sm.Value
		}
	}
	return 0
}

// sum adds every sample of a counter family (e.g. across kind labels).
func (s *scrape) sum(name string) float64 {
	var total float64
	for _, sm := range s.families[name].Samples {
		if sm.Name == name {
			total += sm.Value
		}
	}
	return total
}

// hist collects one labelset's cumulative (le, count) pairs plus the
// _count total, sorted by le.
type hist struct {
	les    []float64
	counts []float64
	count  float64
}

func (s *scrape) histogram(name string, labels map[string]string) hist {
	var h hist
	f, ok := s.families[name]
	if !ok {
		return h
	}
	match := func(sm promtext.ParsedSample) bool {
		for k, v := range labels {
			if sm.Labels[k] != v {
				return false
			}
		}
		return true
	}
	for _, sm := range f.Samples {
		switch sm.Name {
		case name + "_bucket":
			if !match(sm) {
				continue
			}
			le, err := strconv.ParseFloat(sm.Labels["le"], 64)
			if err != nil {
				continue
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, sm.Value)
		case name + "_count":
			if match(sm) {
				h.count = sm.Value
			}
		}
	}
	sort.Sort(byLe{&h})
	return h
}

type byLe struct{ h *hist }

func (b byLe) Len() int           { return len(b.h.les) }
func (b byLe) Less(i, j int) bool { return b.h.les[i] < b.h.les[j] }
func (b byLe) Swap(i, j int) {
	b.h.les[i], b.h.les[j] = b.h.les[j], b.h.les[i]
	b.h.counts[i], b.h.counts[j] = b.h.counts[j], b.h.counts[i]
}

// quantile estimates the q-quantile of the observations that landed
// between two scrapes, by linear interpolation inside the first bucket
// whose cumulative delta reaches rank q. Returns NaN with no new
// observations; the +Inf bucket answers its lower bound (the largest
// finite le), since there is nothing to interpolate toward.
func quantile(q float64, prev, cur hist) float64 {
	if len(cur.les) == 0 {
		return math.NaN()
	}
	// An endpoint first seen this scrape has no previous histogram; all
	// of its observations are new, so diff against zero.
	if len(prev.les) == 0 {
		prev = hist{les: cur.les, counts: make([]float64, len(cur.les))}
	}
	if len(prev.les) != len(cur.les) {
		return math.NaN()
	}
	n := len(cur.les)
	delta := make([]float64, n)
	for i := range delta {
		delta[i] = cur.counts[i] - prev.counts[i]
	}
	total := delta[n-1]
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	for i, cum := range delta {
		if cum < rank {
			continue
		}
		lo, cumLo := 0.0, 0.0
		if i > 0 {
			lo, cumLo = cur.les[i-1], delta[i-1]
		}
		hi := cur.les[i]
		if math.IsInf(hi, 1) {
			return lo
		}
		inBucket := cum - cumLo
		if inBucket <= 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-cumLo)/inBucket
	}
	return cur.les[n-1]
}

// rate is a counter delta per second between the scrapes.
func rate(prev, cur *scrape, name string) float64 {
	dt := cur.t.Sub(prev.t).Seconds()
	if dt <= 0 {
		return 0
	}
	return (cur.value(name, nil) - prev.value(name, nil)) / dt
}

// pct formats a ratio as a percentage, "-" when the denominator is zero.
func pct(num, den float64) string {
	if den <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}

// ms formats a millisecond quantile, "-" for NaN (no observations).
func ms(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func render(out io.Writer, addr string, frame int, prev, cur *scrape) {
	dt := cur.t.Sub(prev.t).Seconds()
	fmt.Fprintf(out, "dedupstat — %s — frame %d — interval %.1fs — %s\n\n",
		addr, frame, dt, cur.t.Format(time.TimeOnly))

	// Overall qps across all endpoints, from the per-endpoint counters.
	var totalQPS float64
	type endpointRow struct {
		name string
		qps  float64
		p50  float64
		p99  float64
	}
	var rows []endpointRow
	reqs := cur.families["dedupd_http_requests_total"]
	for _, sm := range reqs.Samples {
		if sm.Name != "dedupd_http_requests_total" {
			continue
		}
		ep := sm.Labels["endpoint"]
		labels := map[string]string{"endpoint": ep}
		qps := (sm.Value - prev.value("dedupd_http_requests_total", labels)) / dt
		totalQPS += qps
		if qps <= 0 {
			continue
		}
		ph, ch := prev.histogram("dedupd_http_request_duration_ms", labels),
			cur.histogram("dedupd_http_request_duration_ms", labels)
		rows = append(rows, endpointRow{
			name: ep,
			qps:  qps,
			p50:  quantile(0.50, ph, ch),
			p99:  quantile(0.99, ph, ch),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].qps > rows[j].qps })

	queryQPS := rate(prev, cur, "dedupd_queries_total")
	matches := cur.value("dedupd_query_matches_total", nil) - prev.value("dedupd_query_matches_total", nil)
	queries := cur.value("dedupd_queries_total", nil) - prev.value("dedupd_queries_total", nil)
	hits := cur.value("dedupd_phase1_cache_hits_total", nil) - prev.value("dedupd_phase1_cache_hits_total", nil)
	computes := cur.value("dedupd_phase1_cache_computes_total", nil) - prev.value("dedupd_phase1_cache_computes_total", nil)
	qp, qc := prev.histogram("dedupd_query_duration_ms", nil), cur.histogram("dedupd_query_duration_ms", nil)
	fp, fc := prev.histogram("dedupd_wal_fsync_duration_ms", nil), cur.histogram("dedupd_wal_fsync_duration_ms", nil)

	fmt.Fprintf(out, "http     qps=%.1f endpoints=%d\n", totalQPS, len(rows))
	fmt.Fprintf(out, "jobs     running=%.0f queued/s=%.2f done/s=%.2f failed/s=%.2f slow_ops=%.0f\n",
		cur.value("dedupd_jobs_running", nil),
		rate(prev, cur, "dedupd_jobs_queued_total"),
		rate(prev, cur, "dedupd_jobs_done_total"),
		rate(prev, cur, "dedupd_jobs_failed_total"),
		cur.sum("dedupd_slow_ops_total"))
	fmt.Fprintf(out, "queries  qps=%.1f match_rate=%s p50_ms=%s p99_ms=%s snapshot_age_s=%.1f\n",
		queryQPS,
		pct(matches, queries),
		ms(quantile(0.50, qp, qc)),
		ms(quantile(0.99, qp, qc)),
		cur.value("dedupd_query_snapshot_age_seconds", nil))
	fmt.Fprintf(out, "cache    phase1_hit_rate=%s distance_calls/s=%.0f\n",
		pct(hits, hits+computes),
		rate(prev, cur, "dedupd_distance_calls_total"))
	fmt.Fprintf(out, "wal      appends/s=%.1f fsyncs/s=%.1f fsync_p50_ms=%s fsync_p99_ms=%s\n",
		rate(prev, cur, "dedupd_wal_appends_total"),
		rate(prev, cur, "dedupd_wal_fsyncs_total"),
		ms(quantile(0.50, fp, fc)),
		ms(quantile(0.99, fp, fc)))
	fmt.Fprintf(out, "go       goroutines=%.0f heap_mib=%.1f gc_cycles=%.0f\n",
		cur.value("dedupd_go_goroutines", nil),
		cur.value("dedupd_go_heap_alloc_bytes", nil)/(1<<20),
		cur.value("dedupd_go_gc_cycles_total", nil))

	if len(rows) > 0 {
		fmt.Fprintf(out, "\n%-40s %10s %10s %10s\n", "endpoint", "qps", "p50_ms", "p99_ms")
		for _, r := range rows {
			fmt.Fprintf(out, "%-40s %10.1f %10s %10s\n", r.name, r.qps, ms(r.p50), ms(r.p99))
		}
	}
	fmt.Fprintln(out)
}

// renderCluster appends the coordinator's cluster view (-cluster): the
// fleet headline plus one row per worker with its liveness, routed block
// solves, solve rate, and remote solve round-trip quantiles — all read
// from the dedupd_cluster_* families a coordinator node exports.
func renderCluster(out io.Writer, prev, cur *scrape) {
	solvedFam, ok := cur.families["dedupd_cluster_worker_blocks_solved_total"]
	if !ok {
		fmt.Fprintln(out, "cluster  (no dedupd_cluster_* families: not a coordinator node)")
		return
	}
	dt := cur.t.Sub(prev.t).Seconds()

	fmt.Fprintf(out, "cluster  workers_alive=%.0f reassigned=%.0f remote_errors=%.0f local_fallbacks=%.0f agg_solves=%.0f scrape_failed=%.0f\n",
		cur.value("dedupd_cluster_workers_alive", nil),
		cur.value("dedupd_cluster_blocks_reassigned_total", nil),
		cur.value("dedupd_cluster_remote_solve_errors_total", nil),
		cur.value("dedupd_cluster_local_fallbacks_total", nil),
		cur.value("dedupd_cluster_agg_worker_block_solves_total", nil),
		cur.value("dedupd_cluster_workers_scrape_failed", nil))

	type workerRow struct {
		worker string
		alive  string
		solved float64
		rate   float64
		p50    float64
		p99    float64
	}
	var rows []workerRow
	for _, sm := range solvedFam.Samples {
		if sm.Name != solvedFam.Name {
			continue
		}
		w := sm.Labels["worker"]
		labels := map[string]string{"worker": w}
		alive := "dead"
		if cur.value("dedupd_cluster_worker_alive", labels) == 1 {
			alive = "alive"
		}
		r := 0.0
		if dt > 0 {
			r = (sm.Value - prev.value(solvedFam.Name, labels)) / dt
		}
		ph := prev.histogram("dedupd_cluster_remote_block_solve_duration_ms", labels)
		ch := cur.histogram("dedupd_cluster_remote_block_solve_duration_ms", labels)
		rows = append(rows, workerRow{
			worker: w,
			alive:  alive,
			solved: sm.Value,
			rate:   r,
			p50:    quantile(0.50, ph, ch),
			p99:    quantile(0.99, ph, ch),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].worker < rows[j].worker })
	if len(rows) == 0 {
		fmt.Fprintln(out, "cluster  no workers registered")
		return
	}
	fmt.Fprintf(out, "\n%-32s %7s %10s %10s %10s %10s\n", "worker", "state", "blocks", "blocks/s", "p50_ms", "p99_ms")
	for _, r := range rows {
		fmt.Fprintf(out, "%-32s %7s %10.0f %10.2f %10s %10s\n",
			r.worker, r.alive, r.solved, r.rate, ms(r.p50), ms(r.p99))
	}
	fmt.Fprintln(out)
}

package main

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// The two fixture expositions a fake dedupd serves to consecutive
// scrapes. The deltas are chosen so every derived statistic is exact:
// query histogram deltas 10/40/50 across buckets 1/5/25 put p50 at 3.00
// and p99 at 24.00; +25 matches on +50 queries is a 50.0% match rate;
// +30 hits on +10 computes is a 75.0% hit rate.
const scrapeOne = `# TYPE dedupd_jobs_running gauge
dedupd_jobs_running 2
# TYPE dedupd_jobs_queued_total counter
dedupd_jobs_queued_total 10
# TYPE dedupd_jobs_done_total counter
dedupd_jobs_done_total 8
# TYPE dedupd_jobs_failed_total counter
dedupd_jobs_failed_total 1
# TYPE dedupd_slow_ops_total counter
dedupd_slow_ops_total{kind="job"} 3
dedupd_slow_ops_total{kind="query"} 4
# TYPE dedupd_queries_total counter
dedupd_queries_total 100
# TYPE dedupd_query_matches_total counter
dedupd_query_matches_total 60
# TYPE dedupd_query_snapshot_age_seconds gauge
dedupd_query_snapshot_age_seconds 0.5
# TYPE dedupd_phase1_cache_hits_total counter
dedupd_phase1_cache_hits_total 70
# TYPE dedupd_phase1_cache_computes_total counter
dedupd_phase1_cache_computes_total 30
# TYPE dedupd_distance_calls_total counter
dedupd_distance_calls_total 1000
# TYPE dedupd_query_duration_ms histogram
dedupd_query_duration_ms_bucket{le="1"} 20
dedupd_query_duration_ms_bucket{le="5"} 60
dedupd_query_duration_ms_bucket{le="25"} 100
dedupd_query_duration_ms_bucket{le="+Inf"} 100
dedupd_query_duration_ms_sum 420
dedupd_query_duration_ms_count 100
# TYPE dedupd_wal_appends_total counter
dedupd_wal_appends_total 50
# TYPE dedupd_wal_fsyncs_total counter
dedupd_wal_fsyncs_total 25
# TYPE dedupd_wal_fsync_duration_ms histogram
dedupd_wal_fsync_duration_ms_bucket{le="1"} 5
dedupd_wal_fsync_duration_ms_bucket{le="+Inf"} 25
dedupd_wal_fsync_duration_ms_sum 100
dedupd_wal_fsync_duration_ms_count 25
# TYPE dedupd_http_requests_total counter
dedupd_http_requests_total{endpoint="POST /v1/datasets/{id}/query"} 100
dedupd_http_requests_total{endpoint="GET /v1/jobs"} 10
# TYPE dedupd_http_request_duration_ms histogram
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="1"} 20
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="5"} 60
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="25"} 100
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="+Inf"} 100
dedupd_http_request_duration_ms_sum{endpoint="POST /v1/datasets/{id}/query"} 420
dedupd_http_request_duration_ms_count{endpoint="POST /v1/datasets/{id}/query"} 100
# TYPE dedupd_go_goroutines gauge
dedupd_go_goroutines 12
# TYPE dedupd_go_heap_alloc_bytes gauge
dedupd_go_heap_alloc_bytes 2097152
# TYPE dedupd_go_gc_cycles_total counter
dedupd_go_gc_cycles_total 4
`

const scrapeTwo = `# TYPE dedupd_jobs_running gauge
dedupd_jobs_running 2
# TYPE dedupd_jobs_queued_total counter
dedupd_jobs_queued_total 12
# TYPE dedupd_jobs_done_total counter
dedupd_jobs_done_total 10
# TYPE dedupd_jobs_failed_total counter
dedupd_jobs_failed_total 1
# TYPE dedupd_slow_ops_total counter
dedupd_slow_ops_total{kind="job"} 4
dedupd_slow_ops_total{kind="query"} 5
# TYPE dedupd_queries_total counter
dedupd_queries_total 150
# TYPE dedupd_query_matches_total counter
dedupd_query_matches_total 85
# TYPE dedupd_query_snapshot_age_seconds gauge
dedupd_query_snapshot_age_seconds 1.5
# TYPE dedupd_phase1_cache_hits_total counter
dedupd_phase1_cache_hits_total 100
# TYPE dedupd_phase1_cache_computes_total counter
dedupd_phase1_cache_computes_total 40
# TYPE dedupd_distance_calls_total counter
dedupd_distance_calls_total 2000
# TYPE dedupd_query_duration_ms histogram
dedupd_query_duration_ms_bucket{le="1"} 30
dedupd_query_duration_ms_bucket{le="5"} 100
dedupd_query_duration_ms_bucket{le="25"} 150
dedupd_query_duration_ms_bucket{le="+Inf"} 150
dedupd_query_duration_ms_sum 800
dedupd_query_duration_ms_count 150
# TYPE dedupd_wal_appends_total counter
dedupd_wal_appends_total 70
# TYPE dedupd_wal_fsyncs_total counter
dedupd_wal_fsyncs_total 35
# TYPE dedupd_wal_fsync_duration_ms histogram
dedupd_wal_fsync_duration_ms_bucket{le="1"} 10
dedupd_wal_fsync_duration_ms_bucket{le="+Inf"} 35
dedupd_wal_fsync_duration_ms_sum 150
dedupd_wal_fsync_duration_ms_count 35
# TYPE dedupd_http_requests_total counter
dedupd_http_requests_total{endpoint="POST /v1/datasets/{id}/query"} 150
dedupd_http_requests_total{endpoint="GET /v1/jobs"} 10
# TYPE dedupd_http_request_duration_ms histogram
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="1"} 30
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="5"} 100
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="25"} 150
dedupd_http_request_duration_ms_bucket{endpoint="POST /v1/datasets/{id}/query",le="+Inf"} 150
dedupd_http_request_duration_ms_sum{endpoint="POST /v1/datasets/{id}/query"} 800
dedupd_http_request_duration_ms_count{endpoint="POST /v1/datasets/{id}/query"} 150
# TYPE dedupd_go_goroutines gauge
dedupd_go_goroutines 13
# TYPE dedupd_go_heap_alloc_bytes gauge
dedupd_go_heap_alloc_bytes 3145728
# TYPE dedupd_go_gc_cycles_total counter
dedupd_go_gc_cycles_total 5
`

// The coordinator's cluster families, appended to the base fixtures for
// the -cluster view: two workers, one alive and one dead, with solve
// deltas (w1 +20 blocks) whose histogram delta puts p50 exactly at 1.00.
const clusterOne = `# TYPE dedupd_cluster_workers_alive gauge
dedupd_cluster_workers_alive 2
# TYPE dedupd_cluster_blocks_reassigned_total counter
dedupd_cluster_blocks_reassigned_total 0
# TYPE dedupd_cluster_remote_solve_errors_total counter
dedupd_cluster_remote_solve_errors_total 0
# TYPE dedupd_cluster_local_fallbacks_total counter
dedupd_cluster_local_fallbacks_total 0
# TYPE dedupd_cluster_worker_alive gauge
dedupd_cluster_worker_alive{worker="http://w1:8080"} 1
dedupd_cluster_worker_alive{worker="http://w2:8080"} 1
# TYPE dedupd_cluster_worker_blocks_solved_total counter
dedupd_cluster_worker_blocks_solved_total{worker="http://w1:8080"} 40
dedupd_cluster_worker_blocks_solved_total{worker="http://w2:8080"} 10
# TYPE dedupd_cluster_remote_block_solve_duration_ms histogram
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="1"} 20
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="5"} 40
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="+Inf"} 40
dedupd_cluster_remote_block_solve_duration_ms_sum{worker="http://w1:8080"} 90
dedupd_cluster_remote_block_solve_duration_ms_count{worker="http://w1:8080"} 40
# TYPE dedupd_cluster_workers_scraped gauge
dedupd_cluster_workers_scraped 2
# TYPE dedupd_cluster_workers_scrape_failed gauge
dedupd_cluster_workers_scrape_failed 0
# TYPE dedupd_cluster_agg_worker_block_solves_total counter
dedupd_cluster_agg_worker_block_solves_total 50
`

const clusterTwo = `# TYPE dedupd_cluster_workers_alive gauge
dedupd_cluster_workers_alive 1
# TYPE dedupd_cluster_blocks_reassigned_total counter
dedupd_cluster_blocks_reassigned_total 3
# TYPE dedupd_cluster_remote_solve_errors_total counter
dedupd_cluster_remote_solve_errors_total 3
# TYPE dedupd_cluster_local_fallbacks_total counter
dedupd_cluster_local_fallbacks_total 0
# TYPE dedupd_cluster_worker_alive gauge
dedupd_cluster_worker_alive{worker="http://w1:8080"} 1
dedupd_cluster_worker_alive{worker="http://w2:8080"} 0
# TYPE dedupd_cluster_worker_blocks_solved_total counter
dedupd_cluster_worker_blocks_solved_total{worker="http://w1:8080"} 60
dedupd_cluster_worker_blocks_solved_total{worker="http://w2:8080"} 10
# TYPE dedupd_cluster_remote_block_solve_duration_ms histogram
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="1"} 40
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="5"} 60
dedupd_cluster_remote_block_solve_duration_ms_bucket{worker="http://w1:8080",le="+Inf"} 60
dedupd_cluster_remote_block_solve_duration_ms_sum{worker="http://w1:8080"} 130
dedupd_cluster_remote_block_solve_duration_ms_count{worker="http://w1:8080"} 60
# TYPE dedupd_cluster_workers_scraped gauge
dedupd_cluster_workers_scraped 1
# TYPE dedupd_cluster_workers_scrape_failed gauge
dedupd_cluster_workers_scrape_failed 1
# TYPE dedupd_cluster_agg_worker_block_solves_total counter
dedupd_cluster_agg_worker_block_solves_total 70
`

// fixtureServer serves one to the first request and two to every later
// one, mimicking a dedupd whose counters moved between polls.
func fixtureServerBodies(t *testing.T, one, two string) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" || r.URL.Query().Get("format") != "prometheus" {
			t.Errorf("unexpected scrape %s?%s", r.URL.Path, r.URL.RawQuery)
		}
		if n.Add(1) == 1 {
			fmt.Fprint(w, one)
		} else {
			fmt.Fprint(w, two)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func fixtureServer(t *testing.T) *httptest.Server {
	return fixtureServerBodies(t, scrapeOne, scrapeTwo)
}

func TestRenderFromScrapeDiff(t *testing.T) {
	ts := fixtureServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-interval", "10ms", "-count", "1", "-plain"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "\x1b[") {
		t.Error("-plain output contains ANSI escapes")
	}
	for _, want := range []string{
		"frame 1",
		"endpoints=1", // the idle GET /v1/jobs endpoint renders no row
		"running=2",
		"slow_ops=9",
		"match_rate=50.0%",
		"p50_ms=3.00",
		"p99_ms=24.00",
		"snapshot_age_s=1.5",
		"phase1_hit_rate=75.0%",
		"fsync_p50_ms=1.00",
		"fsync_p99_ms=1.00",
		"goroutines=13",
		"heap_mib=3.0",
		"gc_cycles=5",
		"POST /v1/datasets/{id}/query",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "http     qps=0.0") {
		t.Errorf("qps rendered as zero despite moving counters:\n%s", got)
	}
	if strings.Contains(got, "GET /v1/jobs") {
		t.Errorf("idle endpoint rendered a row:\n%s", got)
	}
}

func TestRenderClusterTable(t *testing.T) {
	ts := fixtureServerBodies(t, scrapeOne+clusterOne, scrapeTwo+clusterTwo)
	var out bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-interval", "10ms", "-count", "1", "-plain", "-cluster"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"workers_alive=1",
		"reassigned=3",
		"remote_errors=3",
		"local_fallbacks=0",
		"agg_solves=70",
		"scrape_failed=1",
		"http://w1:8080",
		"http://w2:8080",
		"alive",
		"dead",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster output missing %q:\n%s", want, got)
		}
	}
	// w1's row: 60 blocks total, +20 since the last scrape, delta
	// histogram entirely inside the le=1 bucket (interpolated p50 =
	// 0.50); w2 is dead and idle, so its quantiles render "-".
	w1, w2 := "", ""
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "http://w1:8080") {
			w1 = line
		}
		if strings.HasPrefix(line, "http://w2:8080") {
			w2 = line
		}
	}
	if !strings.Contains(w1, "alive") || !strings.Contains(w1, "60") || !strings.Contains(w1, "0.50") {
		t.Errorf("w1 row = %q", w1)
	}
	if !strings.Contains(w2, "dead") || !strings.Contains(w2, "-") {
		t.Errorf("w2 row = %q", w2)
	}

	// Against a non-coordinator node the cluster section degrades to a
	// single notice instead of an empty table.
	plainTS := fixtureServer(t)
	out.Reset()
	if err := run([]string{"-addr", plainTS.URL, "-interval", "10ms", "-count", "1", "-plain", "-cluster"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not a coordinator node") {
		t.Errorf("non-coordinator notice missing:\n%s", out.String())
	}
}

func TestQuantileFromBucketDeltas(t *testing.T) {
	prev := hist{les: []float64{1, 5, 25, math.Inf(1)}, counts: []float64{20, 60, 100, 100}, count: 100}
	cur := hist{les: []float64{1, 5, 25, math.Inf(1)}, counts: []float64{30, 100, 150, 150}, count: 150}
	if got := quantile(0.50, prev, cur); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("p50 = %g, want 3.0", got)
	}
	if got := quantile(0.99, prev, cur); math.Abs(got-24.0) > 1e-9 {
		t.Errorf("p99 = %g, want 24.0", got)
	}
	// No new observations: NaN, rendered "-".
	if got := quantile(0.5, cur, cur); !math.IsNaN(got) {
		t.Errorf("idle quantile = %g, want NaN", got)
	}
	// Everything past the last finite bound answers that bound.
	inf := hist{les: []float64{1, math.Inf(1)}, counts: []float64{0, 10}, count: 10}
	if got := quantile(0.99, hist{les: inf.les, counts: []float64{0, 0}}, inf); got != 1 {
		t.Errorf("overflow quantile = %g, want 1", got)
	}
	// An endpoint first seen this scrape diffs against zero.
	if got := quantile(0.50, hist{}, cur); math.IsNaN(got) {
		t.Error("first-scrape histogram yields NaN, want a value")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-interval", "0s"}, &out); err == nil {
		t.Error("zero interval accepted")
	}
	if err := run([]string{"stray"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-count", "1"}, &out); err == nil {
		t.Error("unreachable server did not error")
	}
}

// The SQL surface's series ride the same generic scrape parser: a
// fixture exposition carrying dedupd_sql_* families is readable through
// value/sum/histogram without any dedupstat change, and an exposition
// that includes them still renders. This is the forward-compatibility
// contract: new server series never break the dashboard.
const sqlFamilies = `# TYPE dedupd_sql_connections gauge
dedupd_sql_connections 3
# TYPE dedupd_sql_queries_total counter
dedupd_sql_queries_total 42
# TYPE dedupd_sql_rows_returned_total counter
dedupd_sql_rows_returned_total 410
# TYPE dedupd_sql_errors_total counter
dedupd_sql_errors_total 2
# TYPE dedupd_sql_query_duration_ms histogram
dedupd_sql_query_duration_ms_bucket{le="1"} 30
dedupd_sql_query_duration_ms_bucket{le="5"} 40
dedupd_sql_query_duration_ms_bucket{le="+Inf"} 42
dedupd_sql_query_duration_ms_sum 99
dedupd_sql_query_duration_ms_count 42
`

func TestScrapeParsesSQLFamilies(t *testing.T) {
	ts := fixtureServerBodies(t, scrapeOne+sqlFamilies, scrapeTwo+sqlFamilies)
	s, err := fetch(http.DefaultClient, ts.URL+"/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.value("dedupd_sql_connections", nil); got != 3 {
		t.Errorf("sql_connections = %g, want 3", got)
	}
	if got := s.value("dedupd_sql_queries_total", nil); got != 42 {
		t.Errorf("sql_queries_total = %g, want 42", got)
	}
	if got := s.value("dedupd_sql_errors_total", nil); got != 2 {
		t.Errorf("sql_errors_total = %g, want 2", got)
	}
	h := s.histogram("dedupd_sql_query_duration_ms", nil)
	if h.count != 42 || len(h.les) != 3 {
		t.Errorf("sql_query_duration_ms hist = count %g, %d buckets", h.count, len(h.les))
	}
	// slow_ops sums across kinds, so a kind="sql" sample would simply
	// fold into the existing total — nothing to special-case.
	if got := s.sum("dedupd_slow_ops_total"); got != 7 {
		t.Errorf("slow_ops sum = %g, want 7", got)
	}

	// The full render path tolerates the extra families.
	var out bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-interval", "10ms", "-count", "1", "-plain"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "frame 1") {
		t.Errorf("render with sql families failed:\n%s", out.String())
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	err := run([]string{"stray-arg"})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("stray argument: %v", err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	err := run([]string{"stray-arg"})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("stray argument: %v", err)
	}
}

func TestRunRejectsBadDataDir(t *testing.T) {
	// A file where the data directory should be fails startup before the
	// daemon ever listens.
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-data-dir", path})
	if err == nil || !strings.Contains(err.Error(), "recovering data dir") {
		t.Errorf("bad -data-dir: %v", err)
	}
}

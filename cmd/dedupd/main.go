// Command dedupd serves the CS/SN fuzzy-dedup framework over JSON HTTP:
// register datasets (JSON or streaming NDJSON), submit asynchronous dedup
// jobs with K/θ/c parameter sweeps, poll their progress, and fetch
// groups, pairs, and representatives. See internal/server for the
// endpoint reference.
//
// Usage:
//
//	dedupd -addr :8080 -workers 4 -queue 64 -drain 30s
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, and running jobs get up to -drain to finish before they are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fuzzydup/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("dedupd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dedupd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "job worker pool size (default GOMAXPROCS)")
		queue      = fs.Int("queue", 64, "job queue capacity; beyond it submissions get 503")
		maxBody    = fs.Int64("max-body", 32<<20, "request body size cap in bytes")
		maxRecords = fs.Int("max-records", 1_000_000, "per-dataset record cap (-1 disables)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request timeout (-1s disables)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for running jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueCap:       *queue,
		MaxBodyBytes:   *maxBody,
		MaxRecords:     *maxRecords,
		RequestTimeout: *timeout,
		Logger:         log.Default(),
	})
	srv.Metrics().Publish("dedupd")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("listening on %s (workers %d, queue %d)", *addr, *workers, *queue)
	err := srv.ListenAndServe(ctx, *addr, *drain)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bye")
	return nil
}

// Command dedupd serves the CS/SN fuzzy-dedup framework over JSON HTTP:
// register datasets (JSON or streaming NDJSON), submit asynchronous dedup
// jobs with K/θ/c parameter sweeps, poll their progress, and fetch
// groups, pairs, and representatives. Solved datasets also serve
// sub-millisecond point queries (POST /v1/datasets/{id}/query): one
// record in, its duplicate group (or nearest candidates) out, answered
// lock-free from an immutable snapshot of the last solved state. See
// internal/server for the endpoint reference and cmd/dedupload for the
// query load harness.
//
// Usage:
//
//	dedupd -addr :8080 -workers 4 -queue 64 -drain 30s
//
// Durability: -data-dir enables the write-ahead log — datasets, record
// IDs, and finished job results survive crashes and restarts; -fsync
// and -snapshot-every tune the commit and compaction cadence. Without
// -data-dir the service is fully in-memory.
//
// Observability: logs are structured (logfmt via log/slog; -log-level
// debug adds per-request access lines). /metrics serves counters and
// latency histograms as JSON by default and as the Prometheus text
// exposition with ?format=prometheus (or Accept: text/plain) — see
// cmd/dedupstat for a live top-style view over it. Completed traces are
// retained with tail sampling (all errored, slowest per path, recent
// ring; sized by -trace-capacity) on /debug/traces; operations slower
// than -slow-query / -slow-job / -slow-repair emit one wide slog event
// each and land on /debug/slowops. -pprof mounts the runtime profiler
// under /debug/pprof/.
//
// SQL: -sql-addr serves a MySQL wire-protocol listener (stock MySQL
// clients and drivers connect with mysql_native_password; gate it with
// -sql-user/-sql-password). Live state is queryable as virtual tables
// (datasets, records, dup_groups, nn_reln) and through the DEDUP()
// table function, which reuses the committed solve when its parameters
// match and otherwise runs a job and waits. Equality/IN predicates on
// the block_key column push down into the blocked solver, restricting
// the solve to the selected blocks without changing any returned group.
// -sql-max-rows caps every materialized row set (ERR 4001 beyond it);
// statements slower than -slow-query land on /debug/slowops. See the
// README's "SQL access" section and cmd/sqlsh -remote for a client.
//
// Clustering: -role coordinator accepts jobs with "distributed": true
// and fans their block solves out to worker nodes (started with -role
// worker -advertise <url> -peers <coordinator>), placed by consistent
// hashing with bounded retries, reassignment off dead workers, and a
// local fallback — the results are bit-for-bit identical to a
// standalone solve. See internal/cluster and the README's "Running a
// cluster" walkthrough.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503, the listener stops accepting, and running jobs get up to -drain
// to finish before they are cancelled. A draining worker deregisters
// from its coordinators and finishes the block solves it already
// accepted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fuzzydup/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dedupd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dedupd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "job worker pool size (default GOMAXPROCS)")
		queue      = fs.Int("queue", 64, "job queue capacity; beyond it submissions get 503")
		maxBody    = fs.Int64("max-body", 32<<20, "request body size cap in bytes")
		maxRecords = fs.Int("max-records", 1_000_000, "per-dataset record cap (-1 disables)")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-request timeout (-1s disables)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for running jobs")
		pprof      = fs.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
		logLevel   = fs.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		dataDir    = fs.String("data-dir", "", "durability directory (WAL + snapshots); empty runs in-memory")
		fsync      = fs.Bool("fsync", true, "fsync the WAL on group commit (-data-dir only)")
		snapEvery  = fs.Int("snapshot-every", 4096, "logged mutations between snapshots (-1 disables)")
		slowQuery  = fs.Duration("slow-query", 250*time.Millisecond, "slow-op threshold for point queries (-1s disables)")
		slowJob    = fs.Duration("slow-job", 60*time.Second, "slow-op threshold for job runs (-1s disables)")
		slowRepair = fs.Duration("slow-repair", time.Second, "slow-op threshold for incremental repair ops (-1s disables)")
		traceCap   = fs.Int("trace-capacity", 256, "retained trace ring size (GET /debug/traces)")

		sqlAddr     = fs.String("sql-addr", "", "MySQL wire-protocol listen address (e.g. :3306); empty disables the SQL surface")
		sqlMaxRows  = fs.Int("sql-max-rows", 1_000_000, "row cap on every materialized SQL row set (ERR 4001 beyond it)")
		sqlUser     = fs.String("sql-user", "", "SQL username to require (empty accepts any)")
		sqlPassword = fs.String("sql-password", "", "SQL password (mysql_native_password; empty accepts any)")

		role         = fs.String("role", "standalone", "cluster role: standalone, coordinator, or worker")
		peers        = fs.String("peers", "", "comma-separated cluster base URLs: worker seeds (coordinator) or coordinators to announce to (worker)")
		advertise    = fs.String("advertise", "", "base URL coordinators reach this worker at (role worker with -peers)")
		heartbeat    = fs.Duration("heartbeat", time.Second, "worker heartbeat interval")
		heartbeatTTL = fs.Duration("heartbeat-ttl", 3*time.Second, "coordinator liveness window before a silent worker is skipped")
		solveTimeout = fs.Duration("solve-timeout", 30*time.Second, "per-attempt remote block solve deadline (coordinator)")
		solveRetries = fs.Int("solve-retries", 3, "per-worker attempt budget before a block is reassigned (coordinator)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueCap:       *queue,
		MaxBodyBytes:   *maxBody,
		MaxRecords:     *maxRecords,
		RequestTimeout: *timeout,
		Logger:         logger,
		EnablePprof:    *pprof,
		DataDir:        *dataDir,
		NoFsync:        !*fsync,
		SnapshotEvery:  *snapEvery,
		SlowQuery:      *slowQuery,
		SlowJob:        *slowJob,
		SlowRepair:     *slowRepair,
		TraceCapacity:  *traceCap,

		SQLAddr:     *sqlAddr,
		SQLMaxRows:  *sqlMaxRows,
		SQLUser:     *sqlUser,
		SQLPassword: *sqlPassword,

		Role:              *role,
		Peers:             splitPeers(*peers),
		Advertise:         *advertise,
		HeartbeatInterval: *heartbeat,
		HeartbeatTTL:      *heartbeatTTL,
		SolveTimeout:      *solveTimeout,
		SolveRetries:      *solveRetries,
	})
	if err != nil {
		return err
	}
	srv.Metrics().Publish("dedupd")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("listening", "addr", *addr, "sql_addr", *sqlAddr, "role", *role, "workers", *workers, "queue", *queue, "pprof", *pprof, "data_dir", *dataDir)
	err = srv.ListenAndServe(ctx, *addr, *drain)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("bye")
	return nil
}

// splitPeers parses the comma-separated -peers list, dropping empty
// entries so a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Command dedup detects fuzzy duplicates in a CSV file using the CS/SN
// framework. Each CSV row is one record; all columns participate in the
// distance computation.
//
// Usage:
//
//	dedup -input data.csv -mode size -k 3 -c 4
//	dedup -input data.csv -mode diameter -theta 0.3 -estimate-f 0.2 -metric fms
//	dedup -data-dir /var/lib/dedupd -dataset ds-000001 -k 3
//
// Instead of a CSV, -data-dir reads a dataset straight out of a dedupd
// data directory (read-only — nothing is created, truncated, or
// deleted, so it is safe against a live daemon's directory). -dataset
// picks the dataset by ID when the directory holds more than one.
//
// Output: one line per duplicate group, listing the 1-based row numbers
// and the record contents.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"fuzzydup"
	"fuzzydup/internal/dataset"
	"fuzzydup/internal/durable"
	"fuzzydup/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dedup: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is main minus process concerns, so error paths are testable: it
// parses args, reads the input, solves, and prints to stdout, returning
// any error instead of exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("input", "", "CSV file to deduplicate (default stdin)")
		dataDir   = fs.String("data-dir", "", "read records from a dedupd data directory instead of CSV")
		datasetID = fs.String("dataset", "", "dataset ID inside -data-dir (default: the only dataset)")
		metric    = fs.String("metric", "ed", "distance function: ed, fms, cosine, jaccard, jaro, jaro-winkler, monge-elkan, soft-tfidf, soundex")
		mode      = fs.String("mode", "size", "cut specification: size (DE_S), diameter (DE_D), or both")
		k         = fs.Int("k", 3, "maximum group size for -mode size")
		theta     = fs.Float64("theta", 0.3, "maximum group diameter for -mode diameter")
		c         = fs.Float64("c", 4, "sparse-neighborhood threshold (> 1)")
		estimateF = fs.Float64("estimate-f", 0, "estimate c from this duplicate fraction instead of -c")
		agg       = fs.String("agg", "max", "SN aggregation: max, avg, max2")
		approx    = fs.Bool("approx", false, "use the probabilistic q-gram index (recommended beyond ~10k rows)")
		index     = fs.String("index", "", "nearest-neighbor index: exact, pruned, qgram, vptree, minhash (overrides -approx)")
		header    = fs.Bool("header", false, "skip the first CSV row")
		blocked   = fs.Bool("blocked", false, "shard the corpus into blocks and solve them concurrently (-parallel workers); results are identical to the plain solve")
		parallel  = fs.Int("parallel", 4, "worker count for -blocked block solves and exact-index phase-1 lookups")
		baseline  = fs.Bool("baseline", false, "run single-linkage threshold clustering at -theta instead of DE")
		truth     = fs.String("truth", "", "ground-truth file (cmd/datagen format); prints precision/recall instead of groups")
		stats     = fs.Bool("stats", false, "print a run report (phase timings, probe and distance counts) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var records []fuzzydup.Record
	var rows [][]string
	var err error
	switch {
	case *dataDir != "" && *input != "":
		return fmt.Errorf("-data-dir and -input are mutually exclusive")
	case *dataDir != "":
		records, rows, err = readDataDir(*dataDir, *datasetID, stderr)
	default:
		records, rows, err = readCSV(*input, *header)
	}
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no records")
	}

	opts := fuzzydup.Options{
		Metric:      fuzzydup.Metric(*metric),
		Agg:         fuzzydup.Agg(*agg),
		Approximate: *approx,
		Index:       fuzzydup.Index(*index),
		Parallel:    *parallel,
	}
	if *blocked {
		opts.Blocking = &fuzzydup.BlockingOptions{}
	}
	d, err := fuzzydup.New(records, opts)
	if err != nil {
		return err
	}

	cVal := *c
	if *estimateF > 0 {
		cVal, err = d.EstimateC(*estimateF)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "estimated SN threshold c = %g\n", cVal)
	}

	var groups fuzzydup.Groups
	switch {
	case *baseline:
		groups, err = d.SingleLinkage(*theta)
	case *mode == "size":
		groups, err = d.GroupsBySize(*k, cVal)
	case *mode == "diameter":
		groups, err = d.GroupsByDiameter(*theta, cVal)
	case *mode == "both":
		groups, err = d.GroupsBySizeAndDiameter(*k, *theta, cVal)
	default:
		return fmt.Errorf("unknown mode %q (size, diameter, both)", *mode)
	}
	if err != nil {
		return err
	}

	if *stats {
		fmt.Fprintln(stderr, d.Report().String())
	}

	if *truth != "" {
		truthGroups, err := dataset.LoadTruth(*truth)
		if err != nil {
			return err
		}
		pr := eval.PrecisionRecall(groups, truthGroups)
		fmt.Fprintf(stdout, "%d records: precision %.3f, recall %.3f, F1 %.3f (%d/%d pairs correct)\n",
			len(records), pr.Precision, pr.Recall, pr.F1(), pr.TruePositives, pr.Returned)
		return nil
	}

	dups := groups.Duplicates()
	fmt.Fprintf(stdout, "%d records, %d duplicate groups\n", len(records), len(dups))
	for i, g := range dups {
		fmt.Fprintf(stdout, "group %d:\n", i+1)
		for _, id := range g {
			fmt.Fprintf(stdout, "  row %d: %s\n", id+1, strings.Join(rows[id], ", "))
		}
	}
	return nil
}

// readDataDir recovers a dedupd data directory read-only and returns
// one dataset's records. With an empty id the directory must hold
// exactly one dataset; otherwise the known IDs are listed in the error.
func readDataDir(dir, id string, stderr io.Writer) ([]fuzzydup.Record, [][]string, error) {
	st, err := durable.Load(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("reading data dir: %w", err)
	}
	var ds *durable.DatasetState
	switch {
	case id != "":
		for _, d := range st.Datasets {
			if d.ID == id {
				ds = d
				break
			}
		}
		if ds == nil {
			return nil, nil, fmt.Errorf("dataset %q not in %s (have: %s)", id, dir, datasetIDs(st))
		}
	case len(st.Datasets) == 1:
		ds = st.Datasets[0]
	case len(st.Datasets) == 0:
		return nil, nil, fmt.Errorf("no datasets in %s", dir)
	default:
		return nil, nil, fmt.Errorf("%s holds %d datasets (%s); pick one with -dataset",
			dir, len(st.Datasets), datasetIDs(st))
	}
	fmt.Fprintf(stderr, "loaded %s (%q): %d records\n", ds.ID, ds.Name, len(ds.Records))
	rows := make([][]string, len(ds.Records))
	for i, r := range ds.Records {
		rows[i] = []string(r)
	}
	return ds.Records, rows, nil
}

func datasetIDs(st *durable.State) string {
	ids := make([]string, len(st.Datasets))
	for i, d := range st.Datasets {
		ids[i] = d.ID
	}
	return strings.Join(ids, ", ")
}

// readCSV loads records from a file or stdin.
func readCSV(path string, skipHeader bool) ([]fuzzydup.Record, [][]string, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("reading CSV: %w", err)
	}
	if skipHeader && len(rows) > 0 {
		rows = rows[1:]
	}
	records := make([]fuzzydup.Record, len(rows))
	for i, row := range rows {
		records[i] = fuzzydup.Record(row)
	}
	return records, rows, nil
}

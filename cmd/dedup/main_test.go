package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fuzzydup"
	"fuzzydup/internal/durable"
)

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	content := "artist,track\nThe Doors,LA Woman\nDoors,LA Woman\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	records, rows, err := readCSV(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || len(rows) != 2 {
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "The Doors" || records[1][1] != "LA Woman" {
		t.Errorf("records = %v", records)
	}

	// Without header skipping, the header row becomes a record.
	records, _, err = readCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "artist" {
		t.Errorf("records = %v", records)
	}
}

func TestReadCSVRagged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ragged.csv")
	if err := os.WriteFile(path, []byte("a,b\nc\nd,e,f\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	records, _, err := readCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Errorf("ragged rows should be accepted: %v", records)
	}
}

func TestReadCSVMissingFile(t *testing.T) {
	if _, _, err := readCSV("/nonexistent/x.csv", false); err == nil {
		t.Error("missing file accepted")
	}
}

// writeTemp writes content to a temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunErrorPaths(t *testing.T) {
	good := writeTemp(t, "good.csv", "The Doors,LA Woman\nDoors,LA Woman\nAaliyah,Are You Ready\n")
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring the user should see
	}{
		{"bad metric", []string{"-input", good, "-metric", "levenstein"}, `unknown metric "levenstein"`},
		{"missing input", []string{"-input", "/nonexistent/in.csv"}, "no such file"},
		{"malformed csv", []string{"-input", writeTemp(t, "bad.csv", "a,b\n\"unterminated\n")}, "reading CSV"},
		{"empty input", []string{"-input", writeTemp(t, "empty.csv", "")}, "no records"},
		{"bad mode", []string{"-input", good, "-mode", "sideways"}, `unknown mode "sideways"`},
		{"bad index", []string{"-input", good, "-index", "btree"}, `unknown index "btree"`},
		{"bad flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"bad c", []string{"-input", good, "-c", "0.5"}, "must exceed 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			err := run(tc.args, &stdout, &stderr)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestRunStatsFlag(t *testing.T) {
	path := writeTemp(t, "in.csv", "The Doors,LA Woman\nDoors,LA Woman\nAaliyah,Are You Ready\n")
	var stdout, stderr strings.Builder
	if err := run([]string{"-input", path, "-k", "2", "-c", "4", "-stats"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	report := stderr.String()
	for _, want := range []string{"phase1", "phase2", "distance calls", "groups"} {
		if !strings.Contains(report, want) {
			t.Errorf("-stats report lacks %q: %q", want, report)
		}
	}

	// Without the flag, stderr stays quiet.
	stderr.Reset()
	if err := run([]string{"-input", path, "-k", "2", "-c", "4"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr without -stats: %q", stderr.String())
	}
}

func TestRunHappyPath(t *testing.T) {
	path := writeTemp(t, "in.csv", "The Doors,LA Woman\nDoors,LA Woman\nAaliyah,Are You Ready\n")
	var stdout, stderr strings.Builder
	if err := run([]string{"-input", path, "-k", "2", "-c", "4"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "3 records, 1 duplicate groups") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "row 1: The Doors, LA Woman") {
		t.Errorf("output lacks group members: %q", out)
	}
}

// TestRunBlockedFlag: -blocked routes through the sharded pipeline and
// prints exactly what the plain solve prints, plus the blocked line
// under -stats.
func TestRunBlockedFlag(t *testing.T) {
	path := writeTemp(t, "in.csv", "The Doors,LA Woman\nDoors,LA Woman\nAaliyah,Are You Ready\n")
	var plain, blocked, stderr strings.Builder
	if err := run([]string{"-input", path, "-k", "2", "-c", "4"}, &plain, &stderr); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if err := run([]string{"-input", path, "-k", "2", "-c", "4", "-blocked", "-parallel", "2", "-stats"}, &blocked, &stderr); err != nil {
		t.Fatal(err)
	}
	if blocked.String() != plain.String() {
		t.Errorf("-blocked output %q differs from plain %q", blocked.String(), plain.String())
	}
	if !strings.Contains(stderr.String(), "block solves") {
		t.Errorf("-blocked -stats report lacks the blocked line: %q", stderr.String())
	}
}

// buildDataDir writes a small dedupd data directory via the durable
// package, as a daemon would have.
func buildDataDir(t *testing.T, extraDataset bool) string {
	t.Helper()
	dir := t.TempDir()
	db, _, err := durable.Open(durable.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ops := []durable.Op{
		&durable.DatasetCreate{ID: "ds-000001", Name: "music", CreatedUnixNano: 1, Counter: 1,
			Records: []fuzzydup.Record{{"The Doors", "LA Woman"}, {"Doors", "LA Woman"}, {"Aaliyah", "Are You Ready"}},
			RIDs:    []int64{1, 2, 3}, NextRID: 3},
	}
	if extraDataset {
		ops = append(ops, &durable.DatasetCreate{ID: "ds-000002", Name: "other", CreatedUnixNano: 2, Counter: 2,
			Records: []fuzzydup.Record{{"x"}}, RIDs: []int64{1}, NextRID: 1})
	}
	for _, op := range ops {
		if err := db.AppendSync(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunDataDirMode(t *testing.T) {
	dir := buildDataDir(t, false)
	var stdout, stderr strings.Builder
	if err := run([]string{"-data-dir", dir, "-k", "2", "-c", "4"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "3 records, 1 duplicate groups") {
		t.Errorf("output = %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "loaded ds-000001") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// Explicit -dataset works the same; read-only: run twice.
	stdout.Reset()
	if err := run([]string{"-data-dir", dir, "-dataset", "ds-000001", "-k", "2", "-c", "4"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "1 duplicate groups") {
		t.Errorf("output = %q", stdout.String())
	}
}

func TestRunDataDirErrors(t *testing.T) {
	multi := buildDataDir(t, true)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"with input", []string{"-data-dir", multi, "-input", "x.csv"}, "mutually exclusive"},
		{"ambiguous", []string{"-data-dir", multi}, "pick one with -dataset"},
		{"unknown dataset", []string{"-data-dir", multi, "-dataset", "ds-000009"}, `dataset "ds-000009" not in`},
		{"empty dir", []string{"-data-dir", t.TempDir()}, "no datasets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			err := run(tc.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("run(%v) error = %v, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	content := "artist,track\nThe Doors,LA Woman\nDoors,LA Woman\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	records, rows, err := readCSV(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || len(rows) != 2 {
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "The Doors" || records[1][1] != "LA Woman" {
		t.Errorf("records = %v", records)
	}

	// Without header skipping, the header row becomes a record.
	records, _, err = readCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "artist" {
		t.Errorf("records = %v", records)
	}
}

func TestReadCSVRagged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ragged.csv")
	if err := os.WriteFile(path, []byte("a,b\nc\nd,e,f\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	records, _, err := readCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Errorf("ragged rows should be accepted: %v", records)
	}
}

func TestReadCSVMissingFile(t *testing.T) {
	if _, _, err := readCSV("/nonexistent/x.csv", false); err == nil {
		t.Error("missing file accepted")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fuzzydup/internal/server"
)

// startServer boots an in-process dedupd with a small solved dataset
// and returns the base URL and dataset ID.
func startServer(t *testing.T) (string, string) {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var records []string
	for i := 0; i < 50; i++ {
		records = append(records, fmt.Sprintf(`["artist %03d","album %03d"]`, i, i))
	}
	body := fmt.Sprintf(`{"name":"load","records":[%s]}`, strings.Join(records, ","))
	var ds struct {
		ID string `json:"id"`
	}
	postJSON(t, ts.URL+"/v1/datasets", body, &ds)

	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"dataset":%q,"k":[2]}`, ds.ID), &job)
	deadline := time.Now().Add(15 * time.Second)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	return ts.URL, ds.ID
}

func postJSON(t *testing.T, url, body string, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunAgainstLiveServer(t *testing.T) {
	base, ds := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-dataset", ds,
		"-duration", "300ms",
		"-concurrency", "4",
		"-k", "1",
		"-miss-fraction", "0.3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"qps", "p99", "0 errors", "hit ", "miss"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -dataset accepted")
	}
	if err := run([]string{"-dataset", "x", "-miss-fraction", "2"}, &bytes.Buffer{}); err == nil {
		t.Error("bad miss fraction accepted")
	}
	if err := run([]string{"-dataset", "x", "-concurrency", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("zero concurrency accepted")
	}
}

// TestRunUnsolvedDataset: a dataset with no completed job answers 409 to
// every query, and the harness must fail loudly rather than report a
// clean run.
func TestRunUnsolvedDataset(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var ds struct {
		ID string `json:"id"`
	}
	postJSON(t, ts.URL+"/v1/datasets", `{"name":"raw","records":[["a","b"],["c","d"]]}`, &ds)

	var out bytes.Buffer
	err = run([]string{"-addr", ts.URL, "-dataset", ds.ID, "-duration", "100ms", "-concurrency", "2"}, &out)
	if err == nil {
		t.Fatalf("run against unsolved dataset succeeded:\n%s", out.String())
	}
}

// Command dedupload is a wrk-style load harness for dedupd's online
// point-query path. It fetches a dataset's records, then fires
// concurrent POST /v1/datasets/{id}/query requests — a mix of exact
// hits (records the dataset holds) and near-misses (mutated copies) —
// for a fixed duration, and reports throughput and the full latency
// distribution (p50/p90/p99/max) per class.
//
// Usage:
//
//	dedupload -addr http://127.0.0.1:8080 -dataset ds-000001 \
//	    -duration 10s -concurrency 8 -k 1 -miss-fraction 0.2
//
// Every non-2xx response is an error; any error fails the run
// (exit 1), which is what the CI load-smoke step keys off. -max-p99
// additionally enforces a latency budget on the hit class.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dedupload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	dataset     string
	duration    time.Duration
	concurrency int
	k           int
	missFrac    float64
	seed        int64
	maxP99      time.Duration
}

// sample is one completed request: its latency and whether the query
// was an exact hit (a record the dataset holds).
type sample struct {
	latency time.Duration
	hit     bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dedupload", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "dedupd base URL")
	fs.StringVar(&o.dataset, "dataset", "", "dataset ID to query (required)")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "how long to fire queries")
	fs.IntVar(&o.concurrency, "concurrency", 8, "concurrent query workers")
	fs.IntVar(&o.k, "k", 1, "nearest-candidate count for misses (small k prunes best)")
	fs.Float64Var(&o.missFrac, "miss-fraction", 0.2, "fraction of queries that are mutated near-misses")
	fs.Int64Var(&o.seed, "seed", 1, "PRNG seed for query selection and mutation")
	fs.DurationVar(&o.maxP99, "max-p99", 0, "fail if hit-class p99 exceeds this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.dataset == "" {
		return fmt.Errorf("-dataset is required")
	}
	if o.concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1")
	}
	if o.missFrac < 0 || o.missFrac > 1 {
		return fmt.Errorf("-miss-fraction must be in [0, 1]")
	}

	records, err := fetchRecords(o.addr, o.dataset)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("dataset %s has no records", o.dataset)
	}
	fmt.Fprintf(out, "dedupload: %d records, %d workers, %s, k=%d, miss=%.0f%%\n",
		len(records), o.concurrency, o.duration, o.k, o.missFrac*100)

	// Pre-build the query bodies so the measured loop does no JSON work.
	bodies, hits := buildBodies(records, o, 4096)

	deadline := time.Now().Add(o.duration)
	var (
		wg       sync.WaitGroup
		errCount atomic.Int64
		firstErr atomic.Value
	)
	results := make([][]sample, o.concurrency)
	url := strings.TrimRight(o.addr, "/") + "/v1/datasets/" + o.dataset + "/query"
	start := time.Now()
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			var mine []sample
			for i := w; time.Now().Before(deadline); i++ {
				idx := i % len(bodies)
				t0 := time.Now()
				code, err := post(client, url, bodies[idx])
				lat := time.Since(t0)
				if err != nil || code != http.StatusOK {
					if err == nil {
						err = fmt.Errorf("HTTP %d", code)
					}
					errCount.Add(1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				mine = append(mine, sample{latency: lat, hit: hits[idx]})
			}
			results[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, r := range results {
		all = append(all, r...)
	}
	if len(all) == 0 {
		if err, _ := firstErr.Load().(error); err != nil {
			return fmt.Errorf("no successful queries (%d errors, first: %w)", errCount.Load(), err)
		}
		return fmt.Errorf("no queries completed")
	}

	fmt.Fprintf(out, "requests: %d ok, %d errors, %.0f qps\n",
		len(all), errCount.Load(), float64(len(all))/elapsed.Seconds())
	hitP99 := report(out, "hit ", filterSamples(all, true))
	report(out, "miss", filterSamples(all, false))
	report(out, "all ", all)

	if n := errCount.Load(); n > 0 {
		err, _ := firstErr.Load().(error)
		return fmt.Errorf("%d request errors (first: %v)", n, err)
	}
	if o.maxP99 > 0 && hitP99 > o.maxP99 {
		return fmt.Errorf("hit p99 %s exceeds budget %s", hitP99, o.maxP99)
	}
	return nil
}

// buildBodies pre-marshals n query bodies drawn from the records, the
// configured fraction mutated into near-misses, and reports which are
// exact hits.
func buildBodies(records [][]string, o options, n int) ([][]byte, []bool) {
	rng := rand.New(rand.NewSource(o.seed))
	bodies := make([][]byte, n)
	hitClass := make([]bool, n)
	for i := range bodies {
		rec := records[rng.Intn(len(records))]
		hit := rng.Float64() >= o.missFrac
		if !hit {
			rec = mutate(rng, rec)
		}
		body, _ := json.Marshal(map[string]any{"record": rec, "k": o.k})
		bodies[i] = body
		hitClass[i] = hit
	}
	return bodies, hitClass
}

// mutate flips one character of one field so the query misses the exact
// path and exercises the candidate scan.
func mutate(rng *rand.Rand, rec []string) []string {
	out := make([]string, len(rec))
	copy(out, rec)
	for attempt := 0; attempt < 4; attempt++ {
		f := rng.Intn(len(out))
		if out[f] == "" {
			continue
		}
		b := []byte(out[f])
		b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
		out[f] = string(b)
		return out
	}
	out[0] = out[0] + "~"
	return out
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// fetchRecords lists the dataset's records via the records endpoint.
func fetchRecords(addr, dataset string) ([][]string, error) {
	url := strings.TrimRight(addr, "/") + "/v1/datasets/" + dataset + "/records"
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("fetching records: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching records: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Records []struct {
			Record []string `json:"record"`
		} `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding records: %w", err)
	}
	recs := make([][]string, len(body.Records))
	for i, r := range body.Records {
		recs[i] = r.Record
	}
	return recs, nil
}

// filterSamples keeps the samples of one class.
func filterSamples(all []sample, hit bool) []sample {
	var out []sample
	for _, s := range all {
		if s.hit == hit {
			out = append(out, s)
		}
	}
	return out
}

// report prints one class's latency distribution and returns its p99
// (0 when the class is empty). Percentiles are exact: every sample is
// kept and sorted, no sketching.
func report(out io.Writer, label string, samples []sample) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	lat := make([]time.Duration, len(samples))
	for i, s := range samples {
		lat[i] = s.latency
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	p99 := pct(0.99)
	fmt.Fprintf(out, "%s  n=%-7d p50=%-10s p90=%-10s p99=%-10s max=%s\n",
		label, len(lat), pct(0.50), pct(0.90), p99, lat[len(lat)-1])
	return p99
}

package main

import "testing"

// TestRunnersRegistered keeps the ID list and the runner map in sync.
func TestRunnersRegistered(t *testing.T) {
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("experiment %q listed but not registered", id)
		}
	}
	for id := range runners {
		found := false
		for _, o := range order {
			if o == id {
				found = true
			}
		}
		if !found {
			t.Errorf("runner %q not listed in order", id)
		}
	}
}

// TestRunTable1 exercises the cheapest experiment end to end (the others
// are covered by internal/experiments tests and would dominate the suite).
func TestRunTable1(t *testing.T) {
	if err := runTable1(); err != nil {
		t.Fatal(err)
	}
}

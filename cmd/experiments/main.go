// Command experiments regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md's per-experiment index for the mapping).
//
// Usage:
//
//	experiments                 # run everything
//	experiments pr-ed fig8      # run selected experiment IDs
//	experiments -size 2000 pr-fms
//
// Experiment IDs: table1, pr-ed, pr-fms, fig7, fig8, fig9, spread, est-c,
// abl-criteria, abl-index, abl-indexsweep, abl-blocking, robustness,
// p-sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fuzzydup"
	"fuzzydup/internal/dataset"
	"fuzzydup/internal/eval"
	"fuzzydup/internal/experiments"
)

var (
	size = flag.Int("size", 800, "dataset size for quality experiments")
	seed = flag.Int64("seed", 1, "generator seed")
)

var order = []string{
	"table1", "pr-ed", "pr-fms", "fig7", "fig8", "fig9", "spread", "est-c",
	"abl-criteria", "abl-index", "abl-indexsweep", "abl-blocking",
	"robustness", "p-sweep",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			log.Fatalf("unknown experiment %q (known: %s)", id, strings.Join(order, ", "))
		}
		fmt.Printf("=== %s ===\n", id)
		start := time.Now()
		if err := run(); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("--- %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

var runners = map[string]func() error{
	"table1":         runTable1,
	"pr-ed":          func() error { return runPR("ed") },
	"pr-fms":         func() error { return runPR("fms") },
	"fig7":           runFig7,
	"fig8":           runFig8,
	"fig9":           runFig9,
	"spread":         runSpread,
	"est-c":          runEstC,
	"abl-criteria":   runAblCriteria,
	"abl-index":      runAblIndex,
	"abl-blocking":   runAblBlocking,
	"abl-indexsweep": runAblIndexSweep,
	"robustness":     runRobustness,
	"p-sweep":        runPSweep,
}

func runAblIndexSweep() error {
	for _, name := range []string{"restaurants", "media"} {
		res, err := experiments.IndexSweep(name, *size, *seed, 3, 4)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
	}
	return nil
}

func runAblBlocking() error {
	for _, name := range []string{"media", "org"} {
		res, err := experiments.BlockingAblation(name, *size, *seed, 4)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
	}
	return nil
}

func runRobustness() error {
	res, err := experiments.Robustness("media", *size, *seed, nil)
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	return nil
}

func runPSweep() error {
	res, err := experiments.PSweep("media", *size, *seed, nil)
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	return nil
}

// runTable1 walks the motivating example end to end.
func runTable1() error {
	ds := dataset.Table1()
	records := make([]fuzzydup.Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = fuzzydup.Record(r)
	}
	d, err := fuzzydup.New(records, fuzzydup.Options{})
	if err != nil {
		return err
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		return err
	}
	fmt.Println("DE_S(3), c=4 over the paper's Table 1:")
	for _, g := range groups.Duplicates() {
		var parts []string
		for _, id := range g {
			parts = append(parts, fmt.Sprintf("%d:%s — %s", id+1, ds.Records[id][0], ds.Records[id][1]))
		}
		fmt.Println("  {" + strings.Join(parts, " | ") + "}")
	}
	thrGroups, err := d.SingleLinkage(0.31)
	if err != nil {
		return err
	}
	fmt.Println("single-linkage at θ=0.31 (note the series merges):")
	for _, g := range thrGroups.Duplicates() {
		fmt.Printf("  %v\n", add1(g))
	}
	return nil
}

func add1(g []int) []int {
	out := make([]int, len(g))
	for i, v := range g {
		out[i] = v + 1
	}
	return out
}

func runPR(metric string) error {
	grid := eval.RecallGrid(0.3, 0.7, 5)
	for _, name := range dataset.Names() {
		res, err := experiments.PRCurves(experiments.PRConfig{
			Dataset: name, Size: *size, Seed: *seed, Metric: metric,
		})
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
		fmt.Printf("  best DE precision gain over thr (recall 0.3-0.7): %+.3f\n\n",
			res.BestDEPrecisionGain(grid))
	}
	return nil
}

func runFig7() error {
	res, err := experiments.AggComparison(experiments.AggConfig{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	fmt.Printf("  max F1 gap across aggregations: %.4f\n", res.MaxPairwiseF1Gap())
	return nil
}

func runFig8() error {
	res, err := experiments.BFOrdering(experiments.BFConfig{Seed: *seed})
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	fmt.Printf("  BF throughput gain at the tightest buffer: %.2fx\n", res.ThroughputGain(128))
	return nil
}

func runFig9() error {
	res, err := experiments.Scalability(experiments.ScaleConfig{Seed: *seed})
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	fmt.Printf("  phase-1 growth exponent (1.0 = linear): %.2f\n", res.Phase1GrowthExponent())
	return nil
}

func runSpread() error {
	for _, name := range []string{"restaurants", "media"} {
		res, err := experiments.ParamSpread(experiments.SpreadConfig{Dataset: name, Size: *size, Seed: *seed})
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
	}
	return nil
}

func runEstC() error {
	res, err := experiments.EstimatorAccuracy(experiments.EstimatorConfig{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Format())
	return nil
}

func runAblCriteria() error {
	for _, name := range []string{"media", "birdscott"} {
		res, err := experiments.CriteriaAblation(name, *size, *seed, 4, 4, 0.3)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
	}
	return nil
}

func runAblIndex() error {
	for _, name := range []string{"restaurants", "media"} {
		res, err := experiments.IndexAblation(name, *size, *seed, 3, 4)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(res.Format())
	}
	return nil
}

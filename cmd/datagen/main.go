// Command datagen writes the synthetic evaluation datasets to CSV,
// together with their ground-truth duplicate groups, so they can be fed
// to cmd/dedup or external tools.
//
// Usage:
//
//	datagen -dataset media -size 1000 -out ./data
//
// writes ./data/media.csv (records, with header) and ./data/media.truth
// (one line per duplicate group: comma-separated 1-based row numbers).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"fuzzydup/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		name = flag.String("dataset", "media", "dataset: "+strings.Join(dataset.Names(), ", ")+", or all")
		size = flag.Int("size", 1000, "approximate number of tuples")
		seed = flag.Int64("seed", 1, "generator seed")
		dupF = flag.Float64("dup-fraction", 0.25, "fraction of tuples in duplicate groups")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	names := []string{*name}
	if *name == "all" {
		names = dataset.Names()
	}
	for _, n := range names {
		ds, err := dataset.ByName(n, dataset.Config{Size: *size, Seed: *seed, DupFraction: *dupF})
		if err != nil {
			log.Fatal(err)
		}
		if err := write(ds, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d tuples, %d duplicate groups -> %s/%s.csv\n",
			n, ds.Len(), len(ds.Truth), *out, n)
	}
}

func write(ds *dataset.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, ds.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(ds.Fields); err != nil {
		return err
	}
	for _, rec := range ds.Records {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}

	tf, err := os.Create(filepath.Join(dir, ds.Name+".truth"))
	if err != nil {
		return err
	}
	defer tf.Close()
	for _, g := range ds.Truth {
		parts := make([]string, len(g))
		for i, id := range g {
			parts[i] = strconv.Itoa(id + 1)
		}
		if _, err := fmt.Fprintln(tf, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fuzzydup/internal/dataset"
)

func TestWriteDataset(t *testing.T) {
	dir := t.TempDir()
	ds := dataset.Restaurants(dataset.Config{Size: 100, Seed: 3})
	if err := write(ds, dir); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "restaurants.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != ds.Len()+1 { // header + records
		t.Errorf("csv rows = %d, want %d", len(rows), ds.Len()+1)
	}
	if rows[0][0] != "Name" {
		t.Errorf("header = %v", rows[0])
	}

	truth, err := os.ReadFile(filepath.Join(dir, "restaurants.truth"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(truth)), "\n")
	if len(lines) != len(ds.Truth) {
		t.Errorf("truth lines = %d, want %d", len(lines), len(ds.Truth))
	}
	// Each line is comma-separated 1-based indices.
	for _, line := range lines {
		for _, tok := range strings.Split(line, ",") {
			if tok == "" || tok == "0" {
				t.Fatalf("bad truth token %q in %q", tok, line)
			}
		}
	}
}

func TestWriteToUnwritableDir(t *testing.T) {
	ds := dataset.Parks(dataset.Config{Size: 50, Seed: 1})
	if err := write(ds, "/proc/definitely/not/writable"); err == nil {
		t.Error("unwritable dir accepted")
	}
}

package main

import (
	"strings"
	"testing"

	"fuzzydup/internal/sqldb"
)

func TestReplSession(t *testing.T) {
	db := sqldb.Open()
	in := strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT, b TEXT)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two')",
		"SELECT b FROM t ORDER BY a",
		"BOGUS SYNTAX",
		"",
		`\tables`,
		`\q`,
		"SELECT never_reached FROM t",
	}, "\n"))
	var out strings.Builder
	repl(db, in, &out)
	got := out.String()
	for _, want := range []string{"ok (0 rows affected)", "ok (2 rows affected)", "one", "two", "(2 rows)", "error:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "never_reached") {
		t.Error("repl did not stop at \\q")
	}
}

func TestLoadDemo(t *testing.T) {
	db := sqldb.Open()
	if err := loadDemo(db); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM media")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 14 {
		t.Errorf("demo rows = %v", res.Rows[0][0])
	}
	res, err = db.Exec("SELECT COUNT(*) FROM media WHERE track = 'Are You Ready'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 4 {
		t.Errorf("series rows = %v", res.Rows[0][0])
	}
}

package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"fuzzydup/internal/sqldb"
	"fuzzydup/internal/sqlwire"
)

func TestReplSession(t *testing.T) {
	db := sqldb.Open()
	in := strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT, b TEXT)",
		"INSERT INTO t VALUES (1, 'one'), (2, 'two')",
		"SELECT b FROM t ORDER BY a",
		"BOGUS SYNTAX",
		"",
		`\tables`,
		`\q`,
		"SELECT never_reached FROM t",
	}, "\n"))
	var out strings.Builder
	repl(db, in, &out)
	got := out.String()
	for _, want := range []string{"ok (0 rows affected)", "ok (2 rows affected)", "one", "two", "(2 rows)", "error:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "never_reached") {
		t.Error("repl did not stop at \\q")
	}
}

func TestLoadDemo(t *testing.T) {
	db := sqldb.Open()
	if err := loadDemo(db); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM media")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 14 {
		t.Errorf("demo rows = %v", res.Rows[0][0])
	}
	res, err = db.Exec("SELECT COUNT(*) FROM media WHERE track = 'Are You Ready'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 4 {
		t.Errorf("series rows = %v", res.Rows[0][0])
	}
}

// sqldbExecutor backs a wire server with a plain embedded database — the
// shape of a dedupd-less test rig, enough to drive replRemote end to end.
type sqldbExecutor struct{ db *sqldb.DB }

func (e *sqldbExecutor) Query(ctx context.Context, sess *sqlwire.Session, query string) (*sqlwire.Resultset, error) {
	res, err := e.db.ExecContext(ctx, query)
	if err != nil {
		return nil, err
	}
	rs := &sqlwire.Resultset{Affected: uint64(res.Affected)}
	for _, c := range res.Cols {
		rs.Cols = append(rs.Cols, sqlwire.Column{Name: c, Type: sqlwire.TypeVarString})
	}
	for _, row := range res.Rows {
		cells := make([]sqlwire.Cell, len(row))
		for i, v := range row {
			if v.Kind == sqldb.KindNull {
				cells[i] = sqlwire.NullCell()
			} else {
				cells[i] = sqlwire.StringCell(v.String())
			}
		}
		rs.Rows = append(rs.Rows, cells)
	}
	return rs, nil
}

// TestReplRemoteSession runs the remote repl against a real wire server:
// the same session script as TestReplSession, shipped as COM_QUERY, with
// identical rendering.
func TestReplRemoteSession(t *testing.T) {
	srv := &sqlwire.Server{Exec: &sqldbExecutor{db: sqldb.Open()}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	client, err := sqlwire.Dial(lis.Addr().String(), "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	in := strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT, b TEXT)",
		"INSERT INTO t VALUES (1, 'one'), (2, NULL)",
		"SELECT a, b FROM t ORDER BY a",
		"BOGUS SYNTAX",
		`\tables`,
		`\q`,
	}, "\n"))
	var out strings.Builder
	replRemote(client, in, &out)
	got := out.String()
	for _, want := range []string{
		"ok (0 rows affected)", "ok (2 rows affected)",
		"a | b", "1 | one", "2 | NULL", "(2 rows)",
		"error:", "DEDUP(dataset",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

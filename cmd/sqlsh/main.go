// Command sqlsh is an interactive shell for the embedded relational
// engine (internal/sqldb) — the database substrate the paper's phase-2
// partitioning runs on.
//
// Usage:
//
//	sqlsh            # empty database
//	sqlsh -demo      # preloaded with the paper's Table 1 as table "media"
//
// Statements end at a newline; \q quits, \tables lists tables.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"fuzzydup/internal/dataset"
	"fuzzydup/internal/sqldb"
)

func main() {
	log.SetFlags(0)
	demo := flag.Bool("demo", false, "preload the paper's Table 1 as table media(id, artist, track)")
	flag.Parse()

	db := sqldb.Open()
	if *demo {
		if err := loadDemo(db); err != nil {
			log.Fatal(err)
		}
		fmt.Println("loaded table media(id, artist, track) — try: SELECT * FROM media WHERE track = 'Are You Ready'")
	}

	repl(db, os.Stdin, os.Stdout)
}

// repl drives the read-eval-print loop; split from main for testability.
func repl(db *sqldb.DB, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`, line == "quit", line == "exit":
			return
		case line == `\tables`:
			fmt.Fprintln(out, "(tables are listed via their creation statements; query them directly)")
		default:
			res, err := db.Exec(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				printResult(out, res)
			}
		}
		fmt.Fprint(out, "sql> ")
	}
}

func loadDemo(db *sqldb.DB) error {
	if _, err := db.Exec("CREATE TABLE media (id INT, artist TEXT, track TEXT)"); err != nil {
		return err
	}
	ds := dataset.Table1()
	for i, rec := range ds.Records {
		if err := db.Insert("media", sqldb.Int(int64(i+1)), sqldb.Text(rec[0]), sqldb.Text(rec[1])); err != nil {
			return err
		}
	}
	return nil
}

func printResult(out io.Writer, res *sqldb.Result) {
	if len(res.Cols) == 0 {
		fmt.Fprintf(out, "ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

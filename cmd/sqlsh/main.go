// Command sqlsh is an interactive SQL shell. By default it drives the
// embedded relational engine (internal/sqldb) — the database substrate
// the paper's phase-2 partitioning runs on. With -remote it instead
// connects to a dedupd SQL listener (-sql-addr) over the MySQL wire
// protocol and runs every statement there, against the server's live
// virtual tables and the DEDUP() table function.
//
// Usage:
//
//	sqlsh                         # empty local database
//	sqlsh -demo                   # preloaded with the paper's Table 1 as table "media"
//	sqlsh -remote localhost:3306  # speak the wire protocol to a dedupd
//	sqlsh -remote localhost:3306 -user ops -password s3cret
//
// Statements end at a newline; \q quits, \tables lists tables.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"fuzzydup/internal/dataset"
	"fuzzydup/internal/sqldb"
	"fuzzydup/internal/sqlwire"
)

func main() {
	log.SetFlags(0)
	demo := flag.Bool("demo", false, "preload the paper's Table 1 as table media(id, artist, track)")
	remote := flag.String("remote", "", "dedupd SQL address (host:port); empty runs the embedded engine")
	user := flag.String("user", "", "username for -remote")
	password := flag.String("password", "", "password for -remote")
	flag.Parse()

	if *remote != "" {
		client, err := sqlwire.Dial(*remote, *user, *password, "")
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		fmt.Printf("connected to %s — try: SELECT * FROM datasets\n", *remote)
		replRemote(client, os.Stdin, os.Stdout)
		return
	}

	db := sqldb.Open()
	if *demo {
		if err := loadDemo(db); err != nil {
			log.Fatal(err)
		}
		fmt.Println("loaded table media(id, artist, track) — try: SELECT * FROM media WHERE track = 'Are You Ready'")
	}

	repl(db, os.Stdin, os.Stdout)
}

// repl drives the read-eval-print loop; split from main for testability.
func repl(db *sqldb.DB, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`, line == "quit", line == "exit":
			return
		case line == `\tables`:
			fmt.Fprintln(out, "(tables are listed via their creation statements; query them directly)")
		default:
			res, err := db.Exec(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				printResult(out, res)
			}
		}
		fmt.Fprint(out, "sql> ")
	}
}

// replRemote is repl against a wire connection: same prompt, same
// rendering, every statement shipped as COM_QUERY.
func replRemote(client *sqlwire.Client, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`, line == "quit", line == "exit":
			return
		case line == `\tables`:
			fmt.Fprintln(out, "virtual tables: datasets, records, dup_groups, nn_reln; table function: DEDUP(dataset[, k[, theta[, c]]])")
		default:
			res, err := client.Query(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				printWireResult(out, res)
			}
		}
		fmt.Fprint(out, "sql> ")
	}
}

func loadDemo(db *sqldb.DB) error {
	if _, err := db.Exec("CREATE TABLE media (id INT, artist TEXT, track TEXT)"); err != nil {
		return err
	}
	ds := dataset.Table1()
	for i, rec := range ds.Records {
		if err := db.Insert("media", sqldb.Int(int64(i+1)), sqldb.Text(rec[0]), sqldb.Text(rec[1])); err != nil {
			return err
		}
	}
	return nil
}

func printResult(out io.Writer, res *sqldb.Result) {
	if len(res.Cols) == 0 {
		fmt.Fprintf(out, "ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Fprintln(out, strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

// printWireResult renders a wire result set in printResult's format, so
// local and remote sessions read identically.
func printWireResult(out io.Writer, res *sqlwire.Resultset) {
	if len(res.Cols) == 0 {
		fmt.Fprintf(out, "ok (%d rows affected)\n", res.Affected)
		return
	}
	names := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		names[i] = c.Name
	}
	fmt.Fprintln(out, strings.Join(names, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, c := range row {
			if c.Null {
				parts[i] = "NULL"
			} else {
				parts[i] = c.S
			}
		}
		fmt.Fprintln(out, strings.Join(parts, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

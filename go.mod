module fuzzydup

go 1.22

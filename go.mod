module fuzzydup

go 1.23

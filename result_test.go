package fuzzydup

import (
	"reflect"
	"strconv"
	"testing"
)

func TestRepresentativeMedoid(t *testing.T) {
	// Values 0, 10, 11: the medoid of all three is 10 (total distance
	// 10+1=11 vs 10+11=21 vs 1+11=12).
	records := []Record{{"0"}, {"10"}, {"11"}}
	d, err := New(records, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Representative([]int{0, 1, 2}); got != 1 {
		t.Errorf("medoid = %d, want 1", got)
	}
	if got := d.Representative([]int{2}); got != 2 {
		t.Errorf("singleton rep = %d", got)
	}
	// Tie: two equidistant members; lowest index wins.
	rec2 := []Record{{"0"}, {"10"}}
	d2, err := New(rec2, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Representative([]int{0, 1}); got != 0 {
		t.Errorf("tie rep = %d, want 0", got)
	}
}

func TestRepresentativeEmptyPanics(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Representative(nil)
}

func TestEliminate(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	kept, replacedBy := d.Eliminate(groups)
	// Every record is either kept or replaced, never both.
	seen := map[int]bool{}
	for _, id := range kept {
		seen[id] = true
	}
	for gone, rep := range replacedBy {
		if seen[gone] {
			t.Errorf("record %d both kept and replaced", gone)
		}
		if !seen[rep] {
			t.Errorf("replacement %d not kept", rep)
		}
	}
	if len(kept)+len(replacedBy) != d.Len() {
		t.Errorf("kept %d + replaced %d != %d", len(kept), len(replacedBy), d.Len())
	}
	// Table 1: 14 records; three pairs drop one each and the Part II/III/IV
	// triple drops two -> 14 - 5 = 9 survivors.
	if len(kept) != 9 {
		t.Errorf("kept = %d, want 9", len(kept))
	}
	// Deduplicated materialization agrees.
	recs := d.Deduplicated(groups)
	if len(recs) != len(kept) {
		t.Errorf("deduplicated %d records", len(recs))
	}
}

func TestEliminateNoDuplicates(t *testing.T) {
	records := []Record{{"alpha"}, {"omega zulu"}, {"completely different"}}
	d, err := New(records, Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept, replacedBy := d.Eliminate(groups)
	if !reflect.DeepEqual(kept, []int{0, 1, 2}) || len(replacedBy) != 0 {
		t.Errorf("kept = %v, replaced = %v", kept, replacedBy)
	}
}

// numericMetric parses records as numbers and compares them on a /1000
// scale.
func numericMetric(a, b string) float64 {
	x, _ := strconv.ParseFloat(a, 64)
	y, _ := strconv.ParseFloat(b, 64)
	diff := x - y
	if diff < 0 {
		diff = -diff
	}
	return diff / 1000
}

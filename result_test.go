package fuzzydup

import (
	"reflect"
	"strconv"
	"testing"
)

func TestRepresentativeMedoid(t *testing.T) {
	// Values 0, 10, 11: the medoid of all three is 10 (total distance
	// 10+1=11 vs 10+11=21 vs 1+11=12).
	records := []Record{{"0"}, {"10"}, {"11"}}
	d, err := New(records, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Representative([]int{0, 1, 2}); got != 1 {
		t.Errorf("medoid = %d, want 1", got)
	}
	if got := d.Representative([]int{2}); got != 2 {
		t.Errorf("singleton rep = %d", got)
	}
	// Tie: two equidistant members; lowest index wins.
	rec2 := []Record{{"0"}, {"10"}}
	d2, err := New(rec2, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Representative([]int{0, 1}); got != 0 {
		t.Errorf("tie rep = %d, want 0", got)
	}
}

func TestRepresentativeEmptyPanics(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Representative(nil)
}

func TestEliminate(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	kept, replacedBy := d.Eliminate(groups)
	// Every record is either kept or replaced, never both.
	seen := map[int]bool{}
	for _, id := range kept {
		seen[id] = true
	}
	for gone, rep := range replacedBy {
		if seen[gone] {
			t.Errorf("record %d both kept and replaced", gone)
		}
		if !seen[rep] {
			t.Errorf("replacement %d not kept", rep)
		}
	}
	if len(kept)+len(replacedBy) != d.Len() {
		t.Errorf("kept %d + replaced %d != %d", len(kept), len(replacedBy), d.Len())
	}
	// Table 1: 14 records; three pairs drop one each and the Part II/III/IV
	// triple drops two -> 14 - 5 = 9 survivors.
	if len(kept) != 9 {
		t.Errorf("kept = %d, want 9", len(kept))
	}
	// Deduplicated materialization agrees.
	recs := d.Deduplicated(groups)
	if len(recs) != len(kept) {
		t.Errorf("deduplicated %d records", len(recs))
	}
}

func TestEliminateNoDuplicates(t *testing.T) {
	records := []Record{{"alpha"}, {"omega zulu"}, {"completely different"}}
	d, err := New(records, Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept, replacedBy := d.Eliminate(groups)
	if !reflect.DeepEqual(kept, []int{0, 1, 2}) || len(replacedBy) != 0 {
		t.Errorf("kept = %v, replaced = %v", kept, replacedBy)
	}
}

func TestEliminateEmptyGroups(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An empty Groups value (no partition at all) eliminates nothing.
	kept, replacedBy := d.Eliminate(Groups{})
	if len(kept) != 0 || len(replacedBy) != 0 {
		t.Errorf("empty groups: kept %v, replaced %v", kept, replacedBy)
	}
	if recs := d.Deduplicated(Groups{}); len(recs) != 0 {
		t.Errorf("deduplicated empty groups: %v", recs)
	}
	if dups := (Groups{}).Duplicates(); len(dups) != 0 {
		t.Errorf("duplicates of empty groups: %v", dups)
	}
	if pairs := (Groups{}).Pairs(); len(pairs) != 0 {
		t.Errorf("pairs of empty groups: %v", pairs)
	}
}

func TestEliminateSingletonGroups(t *testing.T) {
	records := []Record{{"alpha"}, {"beta"}, {"gamma"}}
	d, err := New(records, Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups := Groups{{1}, {0}, {2}} // all singletons, out of order
	kept, replacedBy := d.Eliminate(groups)
	if !reflect.DeepEqual(kept, []int{0, 1, 2}) {
		t.Errorf("kept = %v, want ascending 0 1 2", kept)
	}
	if len(replacedBy) != 0 {
		t.Errorf("replaced = %v, want none", replacedBy)
	}
	recs := d.Deduplicated(groups)
	if len(recs) != 3 || recs[0][0] != "alpha" || recs[2][0] != "gamma" {
		t.Errorf("deduplicated = %v", recs)
	}
}

func TestRepresentativeOutOfOrderMembers(t *testing.T) {
	// Values 0, 10, 11: medoid is 10 (index 1) no matter how the group
	// lists its members.
	records := []Record{{"0"}, {"10"}, {"11"}}
	d, err := New(records, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		if got := d.Representative(group); got != 1 {
			t.Errorf("Representative(%v) = %d, want 1", group, got)
		}
	}
	// Ties (equidistant members) resolve to the lowest record index even
	// when the group is listed descending.
	rec2 := []Record{{"0"}, {"10"}}
	d2, err := New(rec2, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Representative([]int{1, 0}); got != 0 {
		t.Errorf("descending tie rep = %d, want 0", got)
	}
}

func TestEliminateOutOfOrderMembers(t *testing.T) {
	records := []Record{{"0"}, {"10"}, {"11"}, {"500"}}
	d, err := New(records, Options{CustomMetric: numericMetric})
	if err != nil {
		t.Fatal(err)
	}
	kept, replacedBy := d.Eliminate(Groups{{2, 0, 1}, {3}})
	if !reflect.DeepEqual(kept, []int{1, 3}) {
		t.Errorf("kept = %v, want [1 3]", kept)
	}
	if replacedBy[0] != 1 || replacedBy[2] != 1 || len(replacedBy) != 2 {
		t.Errorf("replaced = %v, want 0->1, 2->1", replacedBy)
	}
}

// numericMetric parses records as numbers and compares them on a /1000
// scale.
func numericMetric(a, b string) float64 {
	x, _ := strconv.ParseFloat(a, 64)
	y, _ := strconv.ParseFloat(b, 64)
	diff := x - y
	if diff < 0 {
		diff = -diff
	}
	return diff / 1000
}

package fuzzydup

import (
	"context"
	"errors"
	"reflect"
	"strconv"
	"testing"
)

// table1 is the paper's motivating example.
func table1() []Record {
	return []Record{
		{"The Doors", "LA Woman"},
		{"Doors", "LA Woman"},
		{"The Beatles", "A Little Help from My Friends"},
		{"Beatles, The", "With A Little Help From My Friend"},
		{"Shania Twain", "Im Holdin on to Love"},
		{"Twian, Shania", "I'm Holding On To Love"},
		{"4 th Elemynt", "Ears/Eyes"},
		{"4 th Elemynt", "Ears/Eyes - Part II"},
		{"4th Elemynt", "Ears/Eyes - Part III"},
		{"4 th Elemynt", "Ears/Eyes - Part IV"},
		{"Aaliyah", "Are You Ready"},
		{"AC DC", "Are You Ready"},
		{"Bob Dylan", "Are You Ready"},
		{"Creed", "Are You Ready"},
	}
}

func TestQuickstartTable1(t *testing.T) {
	d, err := New(table1(), Options{Metric: MetricEdit})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 14 {
		t.Fatalf("Len = %d", d.Len())
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	dups := groups.Duplicates()
	// The three true pairs are found. The "Ears/Eyes - Part II/III/IV"
	// tuples (7-9) also group: under edit distance they sit 1-2 edits
	// apart, textually indistinguishable from duplicates; what matters is
	// that neither tuple 6 nor the dense "Are You Ready" series (10-13)
	// is pulled in — the merges a global threshold cannot avoid.
	want := [][]int{{0, 1}, {2, 3}, {4, 5}, {7, 8, 9}}
	if !reflect.DeepEqual(dups, want) {
		t.Errorf("duplicates = %v, want %v", dups, want)
	}
	for _, g := range dups {
		for _, id := range g {
			if id == 6 || id >= 10 {
				t.Errorf("series tuple %d must stay single: %v", id, g)
			}
		}
	}
}

func TestGroupsByDiameter(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsByDiameter(0.35, 4)
	if err != nil {
		t.Fatal(err)
	}
	dups := groups.Duplicates()
	if len(dups) != 4 { // three true pairs plus the near-identical 7-9 parts
		t.Errorf("duplicates = %v", dups)
	}
	// Every emitted group's diameter stays below theta.
	for _, g := range dups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if dd := d.Distance(g[i], g[j]); dd >= 0.35 {
					t.Errorf("group %v diameter %v >= theta", g, dd)
				}
			}
		}
	}
}

func TestGroupsBySizeAndDiameter(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySizeAndDiameter(2, 0.35, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups.Duplicates() {
		if len(g) > 2 {
			t.Errorf("size bound violated: %v", g)
		}
		if dd := d.Distance(g[0], g[1]); dd >= 0.35 {
			t.Errorf("diameter bound violated: %v at %v", g, dd)
		}
	}
	if len(groups.Duplicates()) < 3 {
		t.Errorf("expected at least the three true pairs: %v", groups.Duplicates())
	}
}

func TestSingleLinkageBaselinePathology(t *testing.T) {
	// The baseline cannot reach full recall without false positives on the
	// Table 1 series; DE can. This is the paper's headline phenomenon
	// expressed through the public API.
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At a threshold high enough to catch the hardest duplicate pair
	// (Beatles, d ≈ 0.29), the series tuples merge too.
	groups, err := d.SingleLinkage(0.31)
	if err != nil {
		t.Fatal(err)
	}
	sawSeriesMerge := false
	for _, g := range groups.Duplicates() {
		for _, id := range g {
			if id >= 6 {
				sawSeriesMerge = true
			}
		}
	}
	if !sawSeriesMerge {
		t.Error("expected the threshold baseline to merge series tuples at high theta")
	}
}

func TestAllMetrics(t *testing.T) {
	for _, m := range []Metric{
		MetricEdit, MetricFMS, MetricCosine, MetricJaccard,
		MetricJaro, MetricJaroWinkler, MetricMongeElkan, MetricSoftTFIDF, MetricDamerau,
	} {
		d, err := New(table1(), Options{Metric: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		groups, err := d.GroupsBySize(3, 4)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		// The Doors pair is trivially close under every metric.
		found := false
		for _, g := range groups.Duplicates() {
			if len(g) == 2 && g[0] == 0 && g[1] == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Doors pair not found: %v", m, groups.Duplicates())
		}
	}
}

func TestCustomMetric(t *testing.T) {
	records := []Record{{"1"}, {"2"}, {"4"}, {"20"}, {"22"}, {"30"}, {"32"}}
	d, err := New(records, Options{CustomMetric: func(a, b string) float64 {
		x, _ := strconv.ParseFloat(a, 64)
		y, _ := strconv.ParseFloat(b, 64)
		diff := x - y
		if diff < 0 {
			diff = -diff
		}
		return diff / 100
	}})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(groups.Duplicates(), want) {
		t.Errorf("groups = %v, want %v", groups.Duplicates(), want)
	}
}

func TestApproximateIndexAgrees(t *testing.T) {
	exact, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := New(table1(), Options{Approximate: true})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := exact.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := approx.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ge, ga) {
		t.Errorf("exact %v vs approximate %v", ge, ga)
	}
}

func TestAllIndexesFindDoorsPair(t *testing.T) {
	for _, ix := range []Index{IndexExact, IndexQGram, IndexVPTree, IndexMinHash} {
		d, err := New(table1(), Options{Index: ix})
		if err != nil {
			t.Fatalf("%s: %v", ix, err)
		}
		groups, err := d.GroupsBySize(3, 4)
		if err != nil {
			t.Fatalf("%s: %v", ix, err)
		}
		found := false
		for _, g := range groups.Duplicates() {
			if len(g) == 2 && g[0] == 0 && g[1] == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Doors pair not found: %v", ix, groups.Duplicates())
		}
	}
	if _, err := New(table1(), Options{Index: "nope"}); err == nil {
		t.Error("unknown index accepted")
	}
}

func TestUseSQLAgrees(t *testing.T) {
	mem, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqlD, err := New(table1(), Options{UseSQL: true})
	if err != nil {
		t.Fatal(err)
	}
	gm, err := mem.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := sqlD.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gm, gs) {
		t.Errorf("in-memory %v vs SQL %v", gm, gs)
	}
}

func TestEstimateCAndGrowths(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ngs, err := d.NeighborhoodGrowths()
	if err != nil {
		t.Fatal(err)
	}
	if len(ngs) != 14 {
		t.Fatalf("growths = %v", ngs)
	}
	// Series tuples (10-13) are denser than duplicate pairs.
	if ngs[10] < 4 || ngs[0] > 3 {
		t.Errorf("growth structure unexpected: %v", ngs)
	}
	c, err := d.EstimateC(6.0 / 14)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 1 {
		t.Errorf("estimated c = %v", c)
	}
}

func TestExcludeOption(t *testing.T) {
	d, err := New(table1(), Options{Exclude: func(a, b int) bool {
		return a == 0 || b == 0 // record 0 may never be grouped
	}})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups.Duplicates() {
		for _, id := range g {
			if id == 0 {
				t.Errorf("excluded record grouped: %v", g)
			}
		}
	}
}

func TestAggOptions(t *testing.T) {
	for _, a := range []Agg{AggMax, AggAvg, AggMax2} {
		d, err := New(table1(), Options{Agg: a})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.GroupsBySize(3, 4); err != nil {
			t.Errorf("agg %s: %v", a, err)
		}
	}
}

func TestSweepCacheConsistency(t *testing.T) {
	// Sweeping K and θ on one Deduper (cached phase 1) must equal fresh
	// Dedupers per parameter (uncached).
	shared, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 5, 4, 2} { // non-monotone order hits both cache paths
		fresh, err := New(table1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := shared.GroupsBySize(k, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.GroupsBySize(k, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("K=%d: cached %v vs fresh %v", k, a, b)
		}
	}
	for _, theta := range []float64{0.2, 0.4, 0.3} {
		fresh, err := New(table1(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := shared.GroupsByDiameter(theta, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.GroupsByDiameter(theta, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("θ=%g: cached %v vs fresh %v", theta, a, b)
		}
	}
	// Combined cut through the same cache.
	a, err := shared.GroupsBySizeAndDiameter(2, 0.35, 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.GroupsBySizeAndDiameter(2, 0.35, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("combined: cached %v vs fresh %v", a, b)
	}
}

func TestExplain(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The Doors pair: mutual nearest neighbors with sparse neighborhoods.
	e := d.Explain(0, 1, 3)
	if !e.MutualNN || e.RankAB != 1 || e.RankBA != 1 {
		t.Errorf("Doors pair explanation = %+v", e)
	}
	if e.Distance <= 0 || e.Distance > 0.3 {
		t.Errorf("distance = %v", e.Distance)
	}
	if e.MaxNG >= 4 {
		t.Errorf("Doors pair should pass SN at c=4: %+v", e)
	}
	// Two "Are You Ready" covers: close, but dense neighborhoods.
	e = d.Explain(10, 11, 3)
	if e.MaxNG < 4 {
		t.Errorf("series pair should fail SN at c=4: %+v", e)
	}
	// A pair that is nowhere near each other: not mutual (13 ranks 0 on
	// the reverse side — tuple 0 is not among its covers).
	e = d.Explain(0, 13, 3)
	if e.MutualNN || e.RankBA != 0 {
		t.Errorf("far pair explanation = %+v", e)
	}
	if e.Distance <= 0.5 {
		t.Errorf("far distance = %v", e.Distance)
	}
}

func TestParallelOptionAgrees(t *testing.T) {
	serial, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(table1(), Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := serial.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := parallel.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs, gp) {
		t.Errorf("parallel differs: %v vs %v", gs, gp)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty relation accepted")
	}
	if _, err := New(table1(), Options{Metric: "nope"}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestSolveErrors(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupsBySize(1, 4); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := d.GroupsBySize(3, 1); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := d.GroupsByDiameter(1.5, 4); err == nil {
		t.Error("theta=1.5 accepted")
	}
}

func TestMinimalCompactOption(t *testing.T) {
	// Three tight pairs that fuse into one compact six-set without the
	// minimality option (cf. core tests).
	records := []Record{{"0"}, {"1"}, {"100"}, {"101"}, {"200"}, {"201"}}
	metric := func(a, b string) float64 {
		x, _ := strconv.ParseFloat(a, 64)
		y, _ := strconv.ParseFloat(b, 64)
		diff := x - y
		if diff < 0 {
			diff = -diff
		}
		return diff / 1000
	}
	merged, err := New(records, Options{CustomMetric: metric})
	if err != nil {
		t.Fatal(err)
	}
	gm, err := merged.GroupsBySize(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gm.Duplicates()) != 1 {
		t.Fatalf("expected one merged group: %v", gm)
	}
	minimal, err := New(records, Options{CustomMetric: metric, MinimalCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	gmin, err := minimal.GroupsBySize(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gmin.Duplicates()) != 3 {
		t.Errorf("expected three minimal pairs: %v", gmin.Duplicates())
	}
}

func TestGroupsCtxCancellation(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.GroupsBySizeCtx(ctx, 3, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("size cut with cancelled ctx: %v", err)
	}
	if _, err := d.GroupsByDiameterCtx(ctx, 0.3, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("diameter cut with cancelled ctx: %v", err)
	}
	if _, err := d.GroupsBySizeAndDiameterCtx(ctx, 3, 0.3, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("combined cut with cancelled ctx: %v", err)
	}
	// The aborted runs must not have poisoned the phase-1 cache: a live
	// context solves normally and matches a fresh Deduper's answer.
	got, err := d.GroupsBySizeCtx(context.Background(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("groups after cancelled attempts = %v, want %v", got, want)
	}
}

func TestCacheStatsSweep(t *testing.T) {
	d, err := New(table1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if computes, hits := d.CacheStats(); computes != 0 || hits != 0 {
		t.Fatalf("fresh deduper stats = %d, %d", computes, hits)
	}
	// Widest first: one compute, then two cache hits.
	for _, k := range []int{4, 3, 2} {
		if _, err := d.GroupsBySize(k, 4); err != nil {
			t.Fatal(err)
		}
	}
	if computes, hits := d.CacheStats(); computes != 1 || hits != 2 {
		t.Errorf("after descending sweep: computes = %d, hits = %d, want 1, 2", computes, hits)
	}
	// Widening the cut recomputes once.
	if _, err := d.GroupsBySize(6, 4); err != nil {
		t.Fatal(err)
	}
	if computes, hits := d.CacheStats(); computes != 2 || hits != 2 {
		t.Errorf("after widening: computes = %d, hits = %d, want 2, 2", computes, hits)
	}
}

package fuzzydup

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// mutateName applies one random character edit, producing a fuzzy
// duplicate.
func mutateName(r *rand.Rand, s string) string {
	if len(s) == 0 {
		return "x"
	}
	b := []byte(s)
	i := r.Intn(len(b))
	switch r.Intn(3) {
	case 0:
		b[i] = byte('a' + r.Intn(26))
	case 1:
		b = append(b[:i], b[i+1:]...)
	default:
		b = append(b[:i+1], b[i:]...)
	}
	return string(b)
}

var nameBases = []string{
	"john smith seattle", "jon smyth seatle", "mary jones portland",
	"robert miller dallas", "roberto miler dalas", "lisa chen boston",
	"james wilson chicago", "patricia brown austin", "michael davis denver",
	"linda garcia phoenix", "william martinez tucson", "elizabeth lee omaha",
}

func randomRecord(r *rand.Rand) Record {
	base := nameBases[r.Intn(len(nameBases))]
	if r.Intn(2) == 0 {
		base = mutateName(r, base)
	}
	return Record{base}
}

// liveDense returns the live records in ascending stable-ID order along
// with the stable→dense index mapping.
func liveDense(inc *Incremental) ([]Record, map[int]int) {
	ids := inc.IDs()
	recs := make([]Record, len(ids))
	dense := make(map[int]int, len(ids))
	for i, id := range ids {
		r, ok := inc.Record(id)
		if !ok {
			panic(fmt.Sprintf("live id %d has no record", id))
		}
		recs[i] = r
		dense[id] = i
	}
	return recs, dense
}

func checkAgainstDeduper(t *testing.T, inc *Incremental, spec IncrementalSpec, opts Options, context string) {
	t.Helper()
	recs, dense := liveDense(inc)
	var got Groups
	for _, g := range inc.Groups() {
		m := make([]int, len(g))
		for i, id := range g {
			m[i] = dense[id]
		}
		got = append(got, m)
	}
	if len(recs) == 0 {
		if len(got) != 0 {
			t.Fatalf("%s: empty dataset has groups %v", context, got)
		}
		return
	}
	d, err := New(recs, opts)
	if err != nil {
		t.Fatalf("%s: New: %v", context, err)
	}
	var want Groups
	switch {
	case spec.MaxSize > 0 && spec.Theta > 0:
		want, err = d.GroupsBySizeAndDiameter(spec.MaxSize, spec.Theta, spec.C)
	case spec.MaxSize > 0:
		want, err = d.GroupsBySize(spec.MaxSize, spec.C)
	default:
		want, err = d.GroupsByDiameter(spec.Theta, spec.C)
	}
	if err != nil {
		t.Fatalf("%s: batch solve: %v", context, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: incremental %v != batch %v\nrecords: %v", context, got, want, recs)
	}
}

// TestIncrementalMatchesDeduper drives the public facade with randomized
// mutation sequences over fuzzy name records under edit distance and
// checks, after every operation and under both cut families, that
// Incremental.Groups equals the Deduper solve of the live records.
func TestIncrementalMatchesDeduper(t *testing.T) {
	sequences := 25
	if testing.Short() {
		sequences = 6
	}
	specs := []IncrementalSpec{
		{MaxSize: 3, C: 3},
		{Theta: 0.35, C: 3},
	}
	for si, spec := range specs {
		spec := spec
		t.Run(fmt.Sprintf("spec%d", si), func(t *testing.T) {
			for seq := 0; seq < sequences; seq++ {
				r := rand.New(rand.NewSource(int64(si*1000+seq) + 31))
				opts := Options{MinimalCompact: seq%2 == 0}
				var init []Record
				for i := 0; i < 12+r.Intn(10); i++ {
					init = append(init, randomRecord(r))
				}
				inc, err := NewIncremental(init, spec, opts)
				if err != nil {
					t.Fatalf("seq %d: %v", seq, err)
				}
				checkAgainstDeduper(t, inc, spec, opts, fmt.Sprintf("seq %d build", seq))
				for o := 0; o < 6; o++ {
					ids := inc.IDs()
					op := r.Intn(3)
					if len(ids) == 0 {
						op = 0
					}
					switch op {
					case 0:
						inc.Insert(randomRecord(r))
					case 1:
						if err := inc.Delete(ids[r.Intn(len(ids))]); err != nil {
							t.Fatal(err)
						}
					default:
						if err := inc.Update(ids[r.Intn(len(ids))], randomRecord(r)); err != nil {
							t.Fatal(err)
						}
					}
					checkAgainstDeduper(t, inc, spec, opts, fmt.Sprintf("seq %d op %d", seq, o))
				}
			}
		})
	}
}

// TestIncrementalRejectsUnsupported pins the constructor's refusal of
// corpus-dependent metrics and non-exact execution paths.
func TestIncrementalRejectsUnsupported(t *testing.T) {
	spec := IncrementalSpec{MaxSize: 3, C: 3}
	cases := []struct {
		name string
		opts Options
	}{
		{"fms", Options{Metric: MetricFMS}},
		{"cosine", Options{Metric: MetricCosine}},
		{"soft-tfidf", Options{Metric: MetricSoftTFIDF}},
		{"qgram index", Options{Index: IndexQGram}},
		{"vptree index", Options{Index: IndexVPTree}},
		{"approximate", Options{Approximate: true}},
		{"sql", Options{UseSQL: true}},
		{"unknown metric", Options{Metric: "nope"}},
	}
	for _, tc := range cases {
		if _, err := NewIncremental(nil, spec, tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewIncremental(nil, IncrementalSpec{C: 3}, Options{}); err == nil {
		t.Error("empty cut accepted")
	}
	if _, err := NewIncremental(nil, IncrementalSpec{MaxSize: 3, C: 1}, Options{}); err == nil {
		t.Error("c <= 1 accepted")
	}
	// The exact index may be requested explicitly.
	if _, err := NewIncremental(nil, spec, Options{Index: IndexExact}); err != nil {
		t.Errorf("exact index rejected: %v", err)
	}
}

// TestIncrementalRecordsAndRepresentative checks record round-trips and
// that the medoid matches Deduper.Representative on the same data.
func TestIncrementalRecordsAndRepresentative(t *testing.T) {
	recs := []Record{
		{"alpha", "one"}, {"alphq", "one"}, {"alpha", "onb"},
		{"zzzz", "far"},
	}
	spec := IncrementalSpec{MaxSize: 4, C: 4}
	inc, err := NewIncremental(recs, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := inc.Record(i)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("Record(%d) = %v, %v", i, got, ok)
		}
	}
	if _, ok := inc.Record(99); ok {
		t.Fatal("Record(99) exists")
	}
	d, err := New(recs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range inc.Groups() {
		if inc.Representative(g) != d.Representative(g) {
			t.Fatalf("representative of %v disagrees with Deduper", g)
		}
	}
	// Stats surface through the facade.
	id := inc.Insert(Record{"alpha", "one"})
	st := inc.LastRepair()
	if st.Op != "insert" || st.ID != id || st.Live != 5 {
		t.Fatalf("facade repair stats = %+v", st)
	}
	if err := inc.Delete(id); err != nil {
		t.Fatal(err)
	}
	if inc.Len() != 4 {
		t.Fatalf("len = %d after delete", inc.Len())
	}
}

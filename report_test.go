package fuzzydup

import (
	"strings"
	"testing"

	"fuzzydup/internal/obs"
)

func reportRecords() []Record {
	return []Record{
		{"The Doors", "LA Woman"},
		{"Doors", "LA Woman"},
		{"Led Zeppelin", "Houses of the Holy"},
		{"Led Zeppellin", "Houses of the Holy"},
		{"Miles Davis", "Kind of Blue"},
		{"John Coltrane", "Giant Steps"},
		{"Joni Mitchell", "Blue"},
		{"Stevie Wonder", "Innervisions"},
	}
}

func TestRunReportCacheSemantics(t *testing.T) {
	d, err := New(reportRecords(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := d.GroupsBySize(3, 4); err != nil {
		t.Fatal(err)
	}
	first := d.LastReport()
	if first.Solves != 1 || first.CacheComputes != 1 || first.CacheHits != 0 {
		t.Fatalf("first solve report: %+v", first)
	}
	if first.Lookups != int64(len(reportRecords())) {
		t.Errorf("lookups = %d, want %d", first.Lookups, len(reportRecords()))
	}
	if first.DistanceCalls == 0 || first.IndexProbes == 0 {
		t.Errorf("first solve did no counted work: %+v", first)
	}
	if first.Groups == 0 || first.DuplicateGroups == 0 {
		t.Errorf("partition stats missing: %+v", first)
	}

	// A narrower K is a pure cache hit: no phase-1 work, no distance
	// computations — the CacheStats semantics the report documents.
	if _, err := d.GroupsBySize(2, 4); err != nil {
		t.Fatal(err)
	}
	second := d.LastReport()
	if second.CacheHits != 1 || second.CacheComputes != 0 {
		t.Fatalf("second solve should hit the cache: %+v", second)
	}
	if second.DistanceCalls != 0 || second.Lookups != 0 || second.IndexProbes != 0 {
		t.Errorf("cached solve recomputed: %+v", second)
	}

	// The cumulative report ties out with CacheStats.
	total := d.Report()
	computes, hits := d.CacheStats()
	if total.Solves != 2 || total.CacheComputes != computes || total.CacheHits != hits {
		t.Errorf("cumulative report %+v vs CacheStats (%d, %d)", total, computes, hits)
	}
	if total.DistanceCalls != first.DistanceCalls {
		t.Errorf("total distance calls %d, want %d (cache hit added none)",
			total.DistanceCalls, first.DistanceCalls)
	}

	if s := total.String(); !strings.Contains(s, "distance calls") || !strings.Contains(s, "phase2") {
		t.Errorf("report String(): %q", s)
	}
}

func TestTracerSpansEmitted(t *testing.T) {
	col := &obs.Collector{}
	d, err := New(reportRecords(), Options{Tracer: &obs.Tracer{Sink: col}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupsBySize(3, 4); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"dedup.solve/phase1", "dedup.solve/phase2", "dedup.solve"} {
		if _, ok := col.Find(path); !ok {
			t.Errorf("span %q not emitted; got %+v", path, col.Spans())
		}
	}
	p1, _ := col.Find("dedup.solve/phase1")
	if p1.Counters["lookups"] != int64(len(reportRecords())) {
		t.Errorf("phase1 span lookups = %v", p1.Counters)
	}
	root, _ := col.Find("dedup.solve")
	if root.Counters["distance_calls"] == 0 {
		t.Errorf("root span distance_calls missing: %v", root.Counters)
	}
}

// TestRunReportUseSQL keeps the SQL phase-2 path reporting the partition
// shape even though candidate counters are unavailable there.
func TestRunReportUseSQL(t *testing.T) {
	d, err := New(reportRecords(), Options{UseSQL: true})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.LastReport()
	if rep.Groups != len(groups) || rep.DuplicateGroups == 0 {
		t.Errorf("SQL-path report %+v for %d groups", rep, len(groups))
	}
}

package fuzzydup

import (
	"fmt"

	"fuzzydup/internal/core"
	"fuzzydup/internal/distance"
	"fuzzydup/internal/incremental"
	"fuzzydup/internal/strutil"
)

// IncrementalSpec fixes the dedup problem an Incremental maintains. Unlike
// a Deduper — which answers many (K, θ, c) questions against one immutable
// dataset — an Incremental answers one question against a mutating
// dataset, so the cut and threshold are bound at construction.
type IncrementalSpec struct {
	// MaxSize is the DE_S(K) group-size bound; Theta the DE_D(θ) diameter
	// bound. Set one, or both for the combined cut. At least one is
	// required.
	MaxSize int
	Theta   float64
	// C is the sparse-neighborhood threshold (> 1).
	C float64
}

func (s IncrementalSpec) cut() core.Cut {
	return core.Cut{MaxSize: s.MaxSize, Diameter: s.Theta}
}

// RepairStats describes the work of one incremental repair; see the
// incremental package for field semantics.
type RepairStats = incremental.RepairStats

// Incremental maintains the duplicate groups of a mutating dataset: each
// Insert, Delete, or Update triggers a local repair (dirty-set phase-1
// relookup plus stitched partition) instead of a full recompute, and the
// resulting partition is always exactly what a from-scratch solve of the
// current records would produce.
//
// Records are identified by stable integer IDs assigned at insert; IDs of
// deleted records are reused. Not safe for concurrent use.
type Incremental struct {
	eng     *incremental.Engine
	records map[int]Record
	metric  distance.Metric
	spec    IncrementalSpec
}

// NewIncremental builds an incremental deduper over the initial records
// (which may be empty) under a fixed problem spec. Records get stable IDs
// 0..len(records)-1 in order.
//
// Only corpus-independent metrics are supported: the IDF-weighted metrics
// (fms, cosine, soft-tfidf) recompute every pairwise distance whenever
// the corpus changes, which is exactly the global recomputation
// incremental maintenance exists to avoid. Options.Index, Approximate,
// UseSQL, and Parallel are likewise rejected or ignored — repairs always
// measure exact distances over the live records.
func NewIncremental(records []Record, spec IncrementalSpec, opts Options) (*Incremental, error) {
	switch {
	case opts.Metric == MetricFMS, opts.Metric == MetricCosine, opts.Metric == MetricSoftTFIDF:
		return nil, fmt.Errorf("fuzzydup: metric %q is corpus-dependent (IDF weights change on every mutation); use a corpus-independent metric for incremental maintenance", opts.Metric)
	case opts.Index != "" && opts.Index != IndexExact:
		return nil, fmt.Errorf("fuzzydup: incremental maintenance requires the exact index, not %q", opts.Index)
	case opts.Approximate:
		return nil, fmt.Errorf("fuzzydup: incremental maintenance requires the exact index")
	case opts.UseSQL:
		return nil, fmt.Errorf("fuzzydup: incremental maintenance does not support the SQL phase-2 path")
	}
	var metric distance.Metric
	switch {
	case opts.CustomMetric != nil:
		metric = distance.Func{MetricName: "custom", F: opts.CustomMetric}
	default:
		m := opts.Metric
		if m == "" {
			m = MetricEdit
		}
		switch m {
		case MetricEdit:
			metric = distance.Edit{}
		case MetricJaccard:
			metric = distance.Jaccard{}
		case MetricJaro:
			metric = distance.Jaro{}
		case MetricJaroWinkler:
			metric = distance.JaroWinkler{}
		case MetricMongeElkan:
			metric = distance.MongeElkan{}
		case MetricSoundex:
			metric = distance.SoundexDistance{}
		case MetricDamerau:
			metric = distance.Damerau{}
		default:
			return nil, fmt.Errorf("fuzzydup: unknown metric %q", m)
		}
	}
	keys := make([]string, len(records))
	for i, r := range records {
		keys[i] = strutil.JoinFields(r)
	}
	eng, err := incremental.New(keys, incremental.Config{
		Metric:         metric,
		Cut:            spec.cut(),
		Agg:            aggOf(opts.Agg),
		C:              spec.C,
		P:              opts.P,
		MinimalCompact: opts.MinimalCompact,
		Exclude:        opts.Exclude,
		Tracer:         opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	recs := make(map[int]Record, len(records))
	for i, r := range records {
		recs[i] = r
	}
	return &Incremental{eng: eng, records: recs, metric: metric, spec: spec}, nil
}

// aggOf maps the public aggregation name to the core constant.
func aggOf(a Agg) core.Agg {
	switch a {
	case AggAvg:
		return core.AggAvg
	case AggMax2:
		return core.AggMax2
	default:
		return core.AggMax
	}
}

// Len returns the number of live records.
func (inc *Incremental) Len() int { return inc.eng.Len() }

// IDs returns the live stable IDs in ascending order.
func (inc *Incremental) IDs() []int { return inc.eng.IDs() }

// Record returns the record stored under a stable ID.
func (inc *Incremental) Record(id int) (Record, bool) {
	r, ok := inc.records[id]
	return r, ok
}

// Insert adds a record, repairs the partition, and returns the record's
// stable ID.
func (inc *Incremental) Insert(rec Record) int {
	id := inc.eng.Insert(strutil.JoinFields(rec))
	inc.records[id] = rec
	return id
}

// Delete removes a record by stable ID and repairs the partition.
func (inc *Incremental) Delete(id int) error {
	if err := inc.eng.Delete(id); err != nil {
		return err
	}
	delete(inc.records, id)
	return nil
}

// Update replaces the record under a stable ID and repairs the partition.
func (inc *Incremental) Update(id int, rec Record) error {
	if err := inc.eng.Update(id, strutil.JoinFields(rec)); err != nil {
		return err
	}
	inc.records[id] = rec
	return nil
}

// Groups returns the current partition over stable IDs — exactly the
// partition a from-scratch Deduper solve of the live records would
// produce for the spec.
func (inc *Incremental) Groups() Groups { return Groups(inc.eng.Groups()) }

// LastRepair reports the work of the most recent mutation (or of the
// initial build): dirty-set size, adopted vs re-evaluated groups,
// distance calls, phase timings, and blocking-coverage diagnostics.
func (inc *Incremental) LastRepair() RepairStats { return inc.eng.LastRepair() }

// Distance returns the configured metric's distance between two live
// records by stable ID.
func (inc *Incremental) Distance(a, b int) float64 {
	ka, _ := inc.eng.Key(a)
	kb, _ := inc.eng.Key(b)
	return inc.metric.Distance(ka, kb)
}

// Representative returns the medoid of a group of stable IDs, with the
// same tie-breaking as Deduper.Representative.
func (inc *Incremental) Representative(group []int) int {
	if len(group) == 0 {
		panic("fuzzydup: representative of empty group")
	}
	best, bestTotal := group[0], -1.0
	for _, cand := range group {
		total := 0.0
		for _, other := range group {
			if other != cand {
				total += inc.Distance(cand, other)
			}
		}
		if bestTotal < 0 || total < bestTotal || (total == bestTotal && cand < best) {
			best, bestTotal = cand, total
		}
	}
	return best
}

#!/usr/bin/env bash
# sql-smoke.sh — end-to-end check of dedupd's SQL product surface.
#
# Boots an in-memory dedupd with -sql-addr, ingests a clustered corpus,
# and drives the MySQL wire protocol three ways:
#
#   1. a raw-packet probe (python3 stdlib socket) asserts the server
#      greets with a protocol-version-10 handshake and answers a bad
#      auth sequence with an ERR packet, not a hang;
#   2. cmd/sqlsh -remote runs catalog queries and the DEDUP() table
#      function, and the script asserts DEDUP's (rid, group_id)
#      partition is byte-identical to the same solve fetched over REST;
#   3. a pushed-down equality predicate on block_key must run strictly
#      fewer block solves than the full blocked pipeline (read from
#      /metrics) while returning the same groups for the selected key.
#
# When the stock go-sql-driver/mysql module is present in the local
# module cache, a throwaway client program verifies a real third-party
# driver can connect and query; offline environments skip that leg with
# a notice (the raw probe and sqlsh already cover the protocol).
set -euo pipefail

CLUSTERS=${CLUSTERS:-12}
PER_CLUSTER=${PER_CLUSTER:-6}

workdir=$(mktemp -d)
addr="127.0.0.1:18427"
sqladdr="127.0.0.1:13306"
base="http://$addr"

dump_diagnostics() {
  echo "=== sql-smoke diagnostics ===" >&2
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then
    echo "--- /metrics (JSON) ---" >&2
    curl -fsS "$base/metrics" >&2 || true
    echo >&2
    echo "--- /debug/slowops (newest 20) ---" >&2
    curl -fsS "$base/debug/slowops?n=20" >&2 || true
    echo >&2
  else
    echo "(daemon not responding; skipping endpoint dumps)" >&2
  fi
  if [ -f "$workdir/daemon.log" ]; then
    echo "--- daemon log (tail) ---" >&2
    tail -n 40 "$workdir/daemon.log" >&2
  fi
}

cleanup() {
  status=$?
  if [ $status -ne 0 ]; then
    dump_diagnostics
  fi
  kill "${daemon_pid:-}" 2>/dev/null || true
  wait "${daemon_pid:-}" 2>/dev/null || true
  rm -rf "$workdir"
  exit $status
}
trap cleanup EXIT

cd "$(dirname "$0")/.."

echo "== building dedupd and sqlsh"
go build -o "$workdir/dedupd" ./cmd/dedupd
go build -o "$workdir/sqlsh" ./cmd/sqlsh

echo "== booting dedupd (http $addr, sql $sqladdr)"
"$workdir/dedupd" -addr "$addr" -sql-addr "$sqladdr" -workers 2 \
  -slow-query 1ms >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null

echo "== raw-packet probe: handshake v10, ERR on garbage auth"
python3 - "$sqladdr" <<'PY'
import socket, struct, sys
host, port = sys.argv[1].rsplit(":", 1)

def read_packet(s):
    hdr = b""
    while len(hdr) < 4:
        chunk = s.recv(4 - len(hdr))
        assert chunk, "connection closed mid-header"
        hdr += chunk
    length = hdr[0] | hdr[1] << 8 | hdr[2] << 16
    body = b""
    while len(body) < length:
        chunk = s.recv(length - len(body))
        assert chunk, "connection closed mid-packet"
        body += chunk
    return hdr[3], body

with socket.create_connection((host, int(port)), timeout=5) as s:
    seq, greeting = read_packet(s)
    assert seq == 0, f"handshake sequence {seq}"
    assert greeting[0] == 10, f"protocol version {greeting[0]}, want 10"
    version = greeting[1:greeting.index(b"\x00", 1)]
    assert version, "empty server version"
    print(f"   handshake ok: protocol 10, server version {version.decode()}")

    # A garbage handshake response must yield a clean ERR packet (0xff).
    payload = struct.pack("<IIB23x", 0x200 | 0x8, 1 << 24, 33) + b"nosuchuser\x00" + b"\x00"
    s.sendall(struct.pack("<I", len(payload))[:3] + bytes([1]) + payload)
    _, reply = read_packet(s)
    assert reply[0] in (0xFF, 0x00), f"unexpected reply type 0x{reply[0]:02x}"
    print(f"   auth reply type 0x{reply[0]:02x} (clean packet, no hang)")
PY

echo "== ingesting $((CLUSTERS * PER_CLUSTER)) records in $CLUSTERS clusters"
ds=$(curl -fsS -X POST "$base/v1/datasets" -H 'Content-Type: application/json' \
  -d '{"name":"smoke"}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
python3 - "$CLUSTERS" "$PER_CLUSTER" <<'PY' >"$workdir/records.ndjson"
import json, sys
clusters, per = int(sys.argv[1]), int(sys.argv[2])
# Cluster c is a run of one letter whose length grows with c: graded
# lengths keep clusters apart in the blocked pipeline's pivot
# projection (about one block per cluster), and consecutive records are
# exact twins, so every cluster contributes real duplicate groups.
for c in range(clusters):
    name = chr(ord("a") + c) * (10 + 10 * c)
    for i in range(per):
        print(json.dumps([name, f"take {i // 2}"]))
PY
curl -fsS -X POST "$base/v1/datasets/$ds/records" \
  -H 'Content-Type: application/x-ndjson' --data-binary "@$workdir/records.ndjson" >/dev/null

sql() {
  printf '%s\n' "$1" | "$workdir/sqlsh" -remote "$sqladdr" | sed 's/^sql> //'
}

echo "== catalog over the wire"
sql "SELECT dataset, records FROM datasets" | tee "$workdir/datasets.out"
grep -q "$ds | $((CLUSTERS * PER_CLUSTER))" "$workdir/datasets.out"

metric() {
  curl -fsS "$base/metrics" | python3 -c "import json,sys; print(int(json.load(sys.stdin).get('$1', 0)))"
}

echo "== restricted DEDUP via block_key pushdown"
# Output lines: 1 "connected to ...", 2 column header, 3 first row.
key=$(sql "SELECT block_key FROM records WHERE dataset = '$ds' ORDER BY rid" | sed -n 3p)
sql "SELECT rid, group_id FROM DEDUP('$ds', 3, 0, 4) WHERE block_key = '$key' ORDER BY rid" \
  >"$workdir/restricted.out"
restricted_solves=$(metric blocks_solved)
[ "$restricted_solves" -ge 1 ] || { echo "restricted solve ran no blocks" >&2; exit 1; }

echo "== full solve via REST job path"
job=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d "{\"dataset\":\"$ds\",\"mode\":\"size\",\"k\":[3],\"c\":[4],\"blocked\":true}" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
for _ in $(seq 1 300); do
  state=$(curl -fsS "$base/v1/jobs/$job" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = done ] && break
  [ "$state" = failed ] && { echo "job failed" >&2; exit 1; }
  sleep 0.1
done
[ "$state" = done ] || { echo "job stuck in $state" >&2; exit 1; }

full_solves=$(( $(metric blocks_solved) - restricted_solves ))
echo "   block solves: restricted=$restricted_solves full=$full_solves"
[ $((2 * restricted_solves)) -le "$full_solves" ] || {
  echo "pushdown did not measurably reduce work ($restricted_solves vs $full_solves)" >&2
  exit 1
}

echo "== DEDUP() vs REST result: byte-identical partition"
curl -fsS "$base/v1/jobs/$job/result" >"$workdir/job.json"
python3 - "$workdir/job.json" <<'PY' >"$workdir/rest.pairs"
import json, sys
res = json.load(open(sys.argv[1]))
pairs = []
for group in res["results"][0]["groups"]:
    gid = min(group) + 1                      # rid = ingest index + 1
    pairs += [(idx + 1, gid) for idx in group]
for rid, gid in sorted(pairs):
    print(f"{rid} | {gid}")
PY
sql "SELECT rid, group_id FROM DEDUP('$ds', 3, 0, 4) ORDER BY rid" |
  grep -E '^[0-9]+ \| [0-9]+$' >"$workdir/sql.pairs"
diff -u "$workdir/rest.pairs" "$workdir/sql.pairs"
echo "   $(wc -l <"$workdir/sql.pairs") (rid, group_id) rows match"

echo "== restricted rows are the full partition's rows for the key"
grep -E '^[0-9]+ \| [0-9]+$' "$workdir/restricted.out" >"$workdir/restricted.pairs"
sql "SELECT rid, group_id FROM DEDUP('$ds', 3, 0, 4) WHERE block_key = '$key' ORDER BY rid" |
  grep -E '^[0-9]+ \| [0-9]+$' >"$workdir/restricted2.pairs"
diff -u "$workdir/restricted.pairs" "$workdir/restricted2.pairs"
while read -r line; do
  grep -qxF "$line" "$workdir/sql.pairs" || {
    echo "restricted row '$line' absent from full partition" >&2
    exit 1
  }
done <"$workdir/restricted.pairs"

echo "== sql metrics and slow-op log"
curl -fsS "$base/metrics?format=prometheus" -o "$workdir/prom.txt"
grep -q '^dedupd_sql_queries_total' "$workdir/prom.txt"
queries=$(metric sql_queries)
[ "$queries" -ge 5 ] || { echo "sql_queries = $queries, want >= 5" >&2; exit 1; }
curl -fsS "$base/debug/slowops?n=50" | python3 -c '
import json, sys
ops = json.load(sys.stdin)["slow_ops"] or []
assert any(o["kind"] == "sql" and o.get("query") for o in ops), "no sql slow op with query text"
n = sum(1 for o in ops if o["kind"] == "sql")
print(f"   {n} slow sql ops logged")
'

# Optional leg: a stock third-party driver, when the module cache has it.
driver_dir="$(go env GOMODCACHE)/github.com/go-sql-driver"
if [ -d "$driver_dir" ]; then
  echo "== stock go-sql-driver/mysql connects"
  mkdir -p "$workdir/driver"
  cat >"$workdir/driver/main.go" <<'GO'
package main

import (
	"database/sql"
	"fmt"
	"log"
	"os"

	_ "github.com/go-sql-driver/mysql"
)

func main() {
	db, err := sql.Open("mysql", fmt.Sprintf("tcp(%s)/", os.Args[1]))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	rows, err := db.Query("SELECT dataset FROM datasets")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var ds string
		if err := rows.Scan(&ds); err != nil {
			log.Fatal(err)
		}
		fmt.Println("   driver sees dataset:", ds)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
GO
  (cd "$workdir/driver" &&
    go mod init sqlsmoke >/dev/null &&
    GOFLAGS=-mod=mod go get github.com/go-sql-driver/mysql >/dev/null 2>&1 &&
    go run . "$sqladdr")
else
  echo "== go-sql-driver/mysql not in module cache; skipping stock-driver leg"
fi

echo "sql-smoke: OK"

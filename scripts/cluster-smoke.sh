#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end chaos check for distributed dedupd.
#
# Starts one coordinator plus three workers, ingests a corpus of typo
# clusters, and runs the same diameter sweep twice on the coordinator:
# once through the plain batch path and once with "distributed": true,
# kill -9ing one worker while the distributed job runs. The coordinator
# must absorb the death (retry, reassign, or solve locally) and the
# distributed result must be byte-identical to the batch one.
set -euo pipefail

workdir=$(mktemp -d)
coord_addr="127.0.0.1:18341"
base="http://$coord_addr"
worker_ports=(18342 18343 18344)
pids=()

cleanup() {
  for p in "${pids[@]}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/dedupd" ./cmd/dedupd

wait_healthy() { # $1 = base url, $2 = log file
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon at $1 did not come up; log:" >&2
  cat "$2" >&2
  exit 1
}

wait_job() { # $1 = job id
  for _ in $(seq 1 600); do
    state=$(curl -fsS "$base/v1/jobs/$1" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    case "$state" in
      done) return 0 ;;
      failed|cancelled) echo "job $1 ended $state" >&2; cat "$workdir/coordinator.log" >&2; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "job $1 never finished" >&2
  exit 1
}

# Coordinator first, so the workers have someone to announce to.
"$workdir/dedupd" -addr "$coord_addr" -role coordinator -workers 2 \
  >"$workdir/coordinator.log" 2>&1 &
pids+=($!)
disown $!
wait_healthy "$base" "$workdir/coordinator.log"

for port in "${worker_ports[@]}"; do
  "$workdir/dedupd" -addr "127.0.0.1:$port" -role worker \
    -advertise "http://127.0.0.1:$port" -peers "$base" -workers 1 \
    >"$workdir/worker-$port.log" 2>&1 &
  pids+=($!)
  disown $!
done
for port in "${worker_ports[@]}"; do
  wait_healthy "http://127.0.0.1:$port" "$workdir/worker-$port.log"
done

# Registration flows worker -> coordinator; wait until all three beat.
for _ in $(seq 1 100); do
  alive=$(curl -fsS "$base/v1/internal/cluster/workers" \
    | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin)["workers"] if w["alive"]))')
  if [ "$alive" -eq 3 ]; then break; fi
  sleep 0.1
done
if [ "$alive" -ne 3 ]; then
  echo "only $alive/3 workers registered" >&2
  exit 1
fi

# A corpus of tight typo clusters: long words with tail edits, the shape
# the blocking strategy shards into many certified blocks.
python3 - > "$workdir/corpus.ndjson" <<'EOF'
import json, random
r = random.Random(7)
letters = "abcdefghijklmnopqrstuvwxyz"
def word():
    return "".join(r.choice(letters) for _ in range(14 + r.randrange(6)))
def mutate(s):
    pos = 4 + r.randrange(len(s) - 4)
    op = r.randrange(3)
    if op == 0:
        return s[:pos] + r.choice(letters) + s[pos + 1:]
    if op == 1:
        return s[:pos] + s[pos + 1:]
    return s[:pos] + r.choice(letters) + s[pos:]
rows = []
while len(rows) < 600:
    base = word()
    rows.append(base)
    for _ in range(4 + r.randrange(3)):
        rows.append(mutate(base))
for row in rows[:600]:
    print(json.dumps([row]))
EOF

ds=$(curl -fsS -X POST "$base/v1/datasets" -H 'Content-Type: application/json' \
  -d '{"name":"cluster-smoke"}' \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -fsS -X POST "$base/v1/datasets/$ds/records" -H 'Content-Type: application/x-ndjson' \
  --data-binary @"$workdir/corpus.ndjson" >/dev/null

spec='{"dataset":"'"$ds"'","mode":"diameter","theta":[0.3],"c":[3]'

# Reference: the plain batch path on the same node and snapshot.
batch=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d "$spec}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
wait_job "$batch"
curl -fsS "$base/v1/jobs/$batch/result" \
  | python3 -c 'import json,sys; r=json.load(sys.stdin); print(json.dumps(r["results"], sort_keys=True))' \
  > "$workdir/result.batch"

# Chaos run: submit the distributed job, then SIGKILL one worker while
# its blocks are in flight.
dist=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d "$spec,\"distributed\":true}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
kill -9 "${pids[1]}" # the first worker
wait_job "$dist"
curl -fsS "$base/v1/jobs/$dist/result" \
  | python3 -c 'import json,sys; r=json.load(sys.stdin); print(json.dumps(r["results"], sort_keys=True))' \
  > "$workdir/result.distributed"

if ! cmp -s "$workdir/result.batch" "$workdir/result.distributed"; then
  echo "MISMATCH: distributed result diverged from the batch result:" >&2
  diff "$workdir/result.batch" "$workdir/result.distributed" >&2 || true
  exit 1
fi

# The fleet view must have noticed the death (a routed solve marks the
# worker dead immediately; otherwise the 3s heartbeat TTL expires it).
sleep 3.5
survivors=$(curl -fsS "$base/v1/internal/cluster/workers" \
  | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin)["workers"] if w["alive"]))')
if [ "$survivors" -gt 2 ]; then
  echo "coordinator still reports $survivors alive workers after kill -9" >&2
  exit 1
fi

echo "cluster-smoke OK: distributed result identical to batch with a worker SIGKILLed mid-run (survivors: $survivors/3)"

#!/usr/bin/env bash
# crash-smoke.sh — end-to-end crash-recovery check for dedupd.
#
# Starts dedupd with a data directory, ingests records over HTTP, runs a
# dedup job, then kills the daemon with SIGKILL (no graceful shutdown).
# A second daemon recovering the same directory must serve the records
# and the finished job result byte-for-byte identical to what the first
# daemon acknowledged.
set -euo pipefail

workdir=$(mktemp -d)
datadir="$workdir/data"
addr="127.0.0.1:18321"
base="http://$addr"

cleanup() {
  kill -9 "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/dedupd" ./cmd/dedupd

start_daemon() {
  "$workdir/dedupd" -addr "$addr" -workers 2 -data-dir "$datadir" -fsync=false \
    >"$workdir/daemon.log" 2>&1 &
  pid=$!
  disown "$pid"
  for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon did not come up; log:" >&2
  cat "$workdir/daemon.log" >&2
  exit 1
}

wait_job() { # $1 = job id
  for _ in $(seq 1 200); do
    state=$(curl -fsS "$base/v1/jobs/$1" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    case "$state" in
      done) return 0 ;;
      failed|cancelled) echo "job $1 ended $state" >&2; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "job $1 never finished" >&2
  exit 1
}

start_daemon

ds=$(curl -fsS -X POST "$base/v1/datasets" -H 'Content-Type: application/json' \
  -d '{"name":"smoke","records":[["The Doors","LA Woman"],["Doors","LA Woman"],["Aaliyah","Are You Ready"],["Beatles","Let It Be"],["The Beatles","Let It Be"]]}' \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

# A couple of follow-up mutations so the log holds more than one op type.
curl -fsS -X POST "$base/v1/datasets/$ds/records" -H 'Content-Type: application/x-ndjson' \
  --data-binary $'["Nirvana","Come As You Are"]\n["Nirvana","Come as you are"]\n' >/dev/null

job=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d "{\"dataset\":\"$ds\",\"k\":[3,2]}" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
wait_job "$job"

curl -fsS "$base/v1/datasets/$ds/records" > "$workdir/records.before"
curl -fsS "$base/v1/jobs/$job/result?k=3" > "$workdir/result.before"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true

start_daemon

curl -fsS "$base/v1/datasets/$ds/records" > "$workdir/records.after"
curl -fsS "$base/v1/jobs/$job/result?k=3" > "$workdir/result.after"

fail=0
for f in records result; do
  if ! cmp -s "$workdir/$f.before" "$workdir/$f.after"; then
    echo "MISMATCH in $f across crash recovery:" >&2
    diff "$workdir/$f.before" "$workdir/$f.after" >&2 || true
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then exit 1; fi

echo "crash-smoke OK: $ds and $job survived SIGKILL bit-for-bit"

#!/usr/bin/env bash
# load-smoke.sh — end-to-end load check of dedupd's online query path.
#
# Boots an in-memory dedupd, ingests a dataset (RECORDS rows, default
# 10000), opens an incremental session, then runs dedupload against it
# while a mutation loop appends and deletes records — every mutation
# triggers a repair job that republishes the query snapshot, so the
# harness exercises the RCU pointer swap under real read concurrency.
# Any non-2xx query response fails the run; MAX_P99 (default 1ms)
# enforces the sub-millisecond hit-latency budget.
#
# The daemon runs with -slow-job 1ms so the initial solve always lands
# in the slow-op log, and a dedupstat frame is rendered mid-load; the
# run fails unless at least one slow op was recorded and dedupstat saw
# non-zero qps. On any failure the trap dumps full diagnostics —
# /metrics (JSON and Prometheus), the slow-op log tail, trace stats,
# and the daemon log — instead of exiting silently.
set -euo pipefail

RECORDS=${RECORDS:-10000}
DURATION=${DURATION:-3s}
# Client worker count defaults to the core count: queries are CPU-bound
# on the server side, so oversubscribing a small box just queues
# requests and inflates tail latency without adding throughput.
CONCURRENCY=${CONCURRENCY:-$(nproc 2>/dev/null || echo 2)}
MAX_P99=${MAX_P99:-1ms}
# Seconds between churn mutations. Each mutation triggers a repair job
# that reconciles the full snapshot (tens of ms of CPU at 10k); a
# realistic trickle keeps the snapshot churning without starving the
# query path on small CI boxes. On a single-core host a repair shares
# the CPU with readers, so Go's ~10ms preemption quantum shows up in
# the max latency — p99 stays sub-millisecond regardless.
CHURN_INTERVAL=${CHURN_INTERVAL:-1}
# The initial incremental solve is the expensive step (quadratic in
# RECORDS: ~30s at 2k, several minutes at 10k); repairs and queries
# afterwards are sub-millisecond. SOLVE_TIMEOUT bounds the wait for it.
SOLVE_TIMEOUT=${SOLVE_TIMEOUT:-1200}

workdir=$(mktemp -d)
addr="127.0.0.1:18423"
base="http://$addr"

# dump_diagnostics — everything needed to debug a failed run, on stderr.
dump_diagnostics() {
  echo "=== load-smoke diagnostics ===" >&2
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then
    echo "--- /metrics (JSON) ---" >&2
    curl -fsS "$base/metrics" >&2 || true
    echo >&2
    echo "--- /metrics?format=prometheus ---" >&2
    curl -fsS "$base/metrics?format=prometheus" >&2 || true
    echo "--- /debug/slowops (newest 20) ---" >&2
    curl -fsS "$base/debug/slowops?n=20" >&2 || true
    echo >&2
    echo "--- /debug/traces stats ---" >&2
    curl -fsS "$base/debug/traces" | python3 -c 'import json,sys; print(json.dumps(json.load(sys.stdin)["stats"], indent=2))' >&2 || true
  else
    echo "(daemon not responding; skipping endpoint dumps)" >&2
  fi
  if [ -f "$workdir/daemon.log" ]; then
    echo "--- daemon log (last 100 lines) ---" >&2
    tail -n 100 "$workdir/daemon.log" >&2
  fi
  if [ -f "$workdir/dedupstat.out" ]; then
    echo "--- dedupstat frame ---" >&2
    cat "$workdir/dedupstat.out" >&2
  fi
  echo "=== end diagnostics ===" >&2
}

cleanup() {
  rc=$?
  if [ "$rc" -ne 0 ]; then
    dump_diagnostics
  fi
  kill "${pid:-}" 2>/dev/null || true
  rm -rf "$workdir"
  exit "$rc"
}
trap cleanup EXIT

go build -o "$workdir/dedupd" ./cmd/dedupd
go build -o "$workdir/dedupload" ./cmd/dedupload
go build -o "$workdir/dedupstat" ./cmd/dedupstat

# -slow-job 1ms guarantees the initial solve exceeds its threshold, so a
# successful run always demonstrates the slow-op pipeline end to end.
"$workdir/dedupd" -addr "$addr" -workers 4 -slow-job 1ms >"$workdir/daemon.log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || { echo "dedupd never became healthy" >&2; exit 1; }

ds=$(curl -fsS -X POST "$base/v1/datasets" -H 'Content-Type: application/json' \
  -d '{"name":"load"}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

# Ingest RECORDS rows with duplicate structure: each base row appears
# once clean and (for every third row) once with a one-letter typo.
python3 - "$RECORDS" >"$workdir/records.ndjson" <<'EOF'
import json, random, sys
n = int(sys.argv[1]); rng = random.Random(7)
words = ["delta", "sonata", "harbor", "violet", "meridian", "cobalt", "lumen", "aria"]
rows = 0; i = 0
while rows < n:
    name = f"{rng.choice(words)} {rng.choice(words)} {i:05d}"
    album = f"{rng.choice(words)} {i % 97:03d}"
    print(json.dumps([name, album])); rows += 1
    if rows < n and i % 3 == 0:
        t = list(name); p = rng.randrange(len(t)); t[p] = "x"
        print(json.dumps(["".join(t), album])); rows += 1
    i += 1
EOF
curl -fsS -X POST "$base/v1/datasets/$ds/records" \
  -H 'Content-Type: application/x-ndjson' --data-binary @"$workdir/records.ndjson" >/dev/null

# Solve once, incrementally, so record mutations republish snapshots.
job=$(curl -fsS -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
  -d "{\"dataset\":\"$ds\",\"incremental\":true,\"k\":[3],\"c\":[4]}" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
for _ in $(seq 1 $((SOLVE_TIMEOUT * 2))); do
  state=$(curl -fsS "$base/v1/jobs/$job" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  case "$state" in
    done) break ;;
    failed|cancelled) echo "job $job ended $state" >&2; exit 1 ;;
  esac
  sleep 0.5
done
[ "$state" = done ] || { echo "job $job never finished" >&2; exit 1; }

# Mutation loop: keep appending and deleting records for the duration of
# the load run, so published snapshots churn underneath the readers.
(
  i=0
  while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    rid=$(curl -fsS -X POST "$base/v1/datasets/$ds/records" \
      -H 'Content-Type: application/x-ndjson' \
      --data-binary "[\"churn row $i\",\"album $i\"]" \
      | python3 -c 'import json,sys; print(json.load(sys.stdin)["record_ids"][0])') || break
    curl -fsS -X DELETE "$base/v1/datasets/$ds/records/$rid" >/dev/null || break
    sleep "$CHURN_INTERVAL"
  done
) &
mutator=$!

# One dedupstat frame rendered while dedupload is querying: its scrape
# diff must see the load (non-zero qps).
("$workdir/dedupstat" -addr "$base" -interval 1s -count 1 -plain \
  >"$workdir/dedupstat.out" 2>&1 || true) &
statpid=$!

rc=0
"$workdir/dedupload" -addr "$base" -dataset "$ds" \
  -duration "$DURATION" -concurrency "$CONCURRENCY" -k 1 -miss-fraction 0.2 \
  -max-p99 "$MAX_P99" || rc=$?

wait "$statpid" 2>/dev/null || true
kill "$mutator" 2>/dev/null || true
wait "$mutator" 2>/dev/null || true

seqs=$(curl -fsS "$base/metrics" | python3 -c 'import json,sys; print(json.load(sys.stdin)["query_snapshots_published"])')
echo "snapshots published during run: $seqs"
if [ "$seqs" -lt 2 ]; then
  echo "FAIL: mutation loop never republished a snapshot" >&2
  exit 1
fi

slow=$(curl -fsS "$base/debug/slowops" | python3 -c 'import json,sys; print(json.load(sys.stdin)["total"])')
echo "slow ops recorded: $slow"
if [ "$slow" -lt 1 ]; then
  echo "FAIL: no slow op recorded despite -slow-job 1ms" >&2
  exit 1
fi

echo "--- dedupstat frame ---"
cat "$workdir/dedupstat.out"
if ! grep -E 'qps=[0-9]*[1-9]' "$workdir/dedupstat.out" >/dev/null; then
  echo "FAIL: dedupstat saw no traffic (qps=0)" >&2
  exit 1
fi

if [ "$rc" -ne 0 ]; then
  echo "load-smoke FAIL (dedupload rc=$rc)" >&2
  exit "$rc"
fi
echo "load-smoke PASS"

package fuzzydup

// One benchmark per table/figure of the paper's evaluation, as indexed in
// DESIGN.md. Each bench drives the same experiment code cmd/experiments
// runs and reports the headline quantity of its figure as a custom metric,
// so `go test -bench . -benchmem` regenerates the whole evaluation:
//
//	BenchmarkTable1Motivation   — Table 1 end to end
//	BenchmarkPRCurvesEdit       — Fig. 10-family (PR under edit distance)
//	BenchmarkPRCurvesFMS        — Fig. 11-family (PR under fms)
//	BenchmarkFig7Aggregations   — Fig. 7 (Max / Avg / Max2)
//	BenchmarkFig8BFOrdering     — Fig. 8 (BF vs random lookup order)
//	BenchmarkFig9Scalability    — Fig. 9 (phase running times vs n)
//	BenchmarkParamSpread        — Sec. 5.1 spread observation
//	BenchmarkEstimateC          — Sec. 4.3 threshold estimation
//	BenchmarkAblationCriteria   — CS/SN criteria ablation (beyond paper)
//	BenchmarkAblationIndex      — exact vs probabilistic index (beyond paper)

import (
	"testing"

	"fuzzydup/internal/eval"
	"fuzzydup/internal/experiments"
)

func BenchmarkTable1Motivation(b *testing.B) {
	d, err := New(table1(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.GroupsBySize(3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPR runs the PR comparison over the series-bearing datasets and
// reports the mean precision gain of DE over the threshold baseline.
func benchPR(b *testing.B, metric string) {
	b.Helper()
	grid := eval.RecallGrid(0.3, 0.7, 5)
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = 0
		n := 0
		for _, name := range []string{"media", "birdscott", "restaurants"} {
			res, err := experiments.PRCurves(experiments.PRConfig{
				Dataset: name, Size: 500, Seed: 2, Metric: metric,
			})
			if err != nil {
				b.Fatal(err)
			}
			gain += res.BestDEPrecisionGain(grid)
			n++
		}
		gain /= float64(n)
	}
	b.ReportMetric(gain, "precision-gain")
}

func BenchmarkPRCurvesEdit(b *testing.B) { benchPR(b, "ed") }

func BenchmarkPRCurvesFMS(b *testing.B) { benchPR(b, "fms") }

func BenchmarkFig7Aggregations(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AggComparison(experiments.AggConfig{Size: 500, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		gap = res.MaxPairwiseF1Gap()
	}
	b.ReportMetric(gap, "agg-F1-gap")
}

func BenchmarkFig8BFOrdering(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BFOrdering(experiments.BFConfig{
			Size: 4000, Seed: 2, PoolFrames: []int{64, 96, 112},
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = res.ThroughputGain(64)
	}
	b.ReportMetric(gain, "bf-throughput-gain")
}

func BenchmarkFig9Scalability(b *testing.B) {
	var exponent float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scalability(experiments.ScaleConfig{
			Sizes: []int{500, 1000, 2000, 4000}, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		exponent = res.Phase1GrowthExponent()
	}
	b.ReportMetric(exponent, "phase1-growth-exp")
}

func BenchmarkParamSpread(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ParamSpread(experiments.SpreadConfig{Size: 500, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		var sMax, dMax float64
		for _, row := range res.Rows {
			if len(row.Curve) >= 4 && row.Curve[:4] == "DE_S" && row.RecallRange > sMax {
				sMax = row.RecallRange
			}
			if len(row.Curve) >= 4 && row.Curve[:4] == "DE_D" && row.RecallRange > dMax {
				dMax = row.RecallRange
			}
		}
		if sMax > 0 {
			ratio = dMax / sMax
		} else {
			ratio = dMax
		}
	}
	b.ReportMetric(ratio, "spread-ratio")
}

func BenchmarkEstimateC(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.EstimatorAccuracy(experiments.EstimatorConfig{
			Size: 500, Seed: 2, Datasets: []string{"media", "restaurants"},
		})
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, row := range res.Rows {
			if row.BestOracle > 0 && row.F1AtEst/row.BestOracle < worst {
				worst = row.F1AtEst / row.BestOracle
			}
		}
	}
	b.ReportMetric(worst, "est-vs-oracle-F1")
}

func BenchmarkAblationCriteria(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CriteriaAblation("media", 500, 2, 4, 4, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		var full, csOnly float64
		for _, row := range res.Rows {
			switch row.Config {
			case "CS+SN (full)":
				full = row.Precision
			case "CS only (c=inf)":
				csOnly = row.Precision
			}
		}
		delta = full - csOnly
	}
	b.ReportMetric(delta, "sn-precision-lift")
}

func BenchmarkAblationIndex(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.IndexAblation("restaurants", 400, 2, 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.ExactF1 - res.QGramF1
	}
	b.ReportMetric(gap, "exact-vs-qgram-F1-gap")
}

func BenchmarkAblationBlocking(b *testing.B) {
	var leak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BlockingAblation("media", 400, 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Scheme == "multi-key" {
				leak = 1 - row.NNCoverage
			}
		}
	}
	b.ReportMetric(leak, "nn-pair-leakage")
}

func BenchmarkRobustness(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Robustness("media", 400, 2, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		margin = res.Rows[0].DEF1 - res.Rows[0].ThrF1
	}
	b.ReportMetric(margin, "de-f1-margin")
}

// BenchmarkSolveSizes profiles the end-to-end library path at a few
// relation sizes (complements Fig. 9, which times the phases separately).
func BenchmarkSolveSizes(b *testing.B) {
	for _, n := range []int{250, 500, 1000} {
		b.Run(itoa(n), func(b *testing.B) {
			ds, err := experimentsDataset(n)
			if err != nil {
				b.Fatal(err)
			}
			d, err := New(ds, Options{Approximate: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.GroupsBySize(3, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func experimentsDataset(n int) ([]Record, error) {
	// Reuse the Org generator through the experiments package's seam is
	// not exported; regenerate inline via the dataset package.
	return orgRecords(n)
}

package fuzzydup

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"fuzzydup/internal/obs"
)

// blockingRecords builds a numeric corpus of duplicate clusters amid
// uniform noise: zero-padded decimals whose custom metric is the scaled
// absolute difference — a true metric, so the pivot guard is sound on it.
func blockingRecords(seed int64, n int) []Record {
	r := rand.New(rand.NewSource(seed))
	recs := make([]Record, 0, n)
	for len(recs) < n {
		base := r.Intn(1000000)
		if r.Intn(3) == 0 {
			k := 2 + r.Intn(3)
			for i := 0; i < k && len(recs) < n; i++ {
				recs = append(recs, Record{fmt.Sprintf("%06d", (base+r.Intn(3))%1000000)})
			}
		} else {
			recs = append(recs, Record{fmt.Sprintf("%06d", base)})
		}
	}
	return recs
}

func blockingDist(a, b string) float64 {
	x, _ := strconv.Atoi(a)
	y, _ := strconv.Atoi(b)
	return math.Abs(float64(x-y)) / 1000000
}

// solveAll runs the three public solve entry points and returns their
// partitions, so blocked/monolithic comparisons cover every cut family.
func solveAll(t *testing.T, d *Deduper) []Groups {
	t.Helper()
	bySize, err := d.GroupsBySize(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	byDiam, err := d.GroupsByDiameter(1e-4, 3)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := d.GroupsBySizeAndDiameter(4, 1e-4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []Groups{bySize, byDiam, combined}
}

func TestBlockingMatchesMonolithic(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		recs := blockingRecords(seed, 300)
		plain, err := New(recs, Options{CustomMetric: blockingDist})
		if err != nil {
			t.Fatal(err)
		}
		want := solveAll(t, plain)
		for _, bo := range []*BlockingOptions{
			{Parallel: 4, PivotGuard: true},
			{Parallel: 1},                // exhaustive guard, serial
			{KeyPrefixLen: 3, Window: 1}, // custom keys, canopy disabled
			{Parallel: 8, MaxRounds: 1},  // immediate forced-full fallback
		} {
			d, err := New(recs, Options{CustomMetric: blockingDist, Blocking: bo})
			if err != nil {
				t.Fatal(err)
			}
			got := solveAll(t, d)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("seed %d opts %+v solve %d: blocked partition diverges", seed, *bo, i)
				}
			}
			if rep := d.LastReport(); rep.BlocksSolved == 0 {
				t.Errorf("seed %d opts %+v: BlocksSolved = 0", seed, *bo)
			}
		}
	}
}

// TestBlockingTextMatches exercises the blocked path under the default
// normalized edit distance (not a guaranteed true metric — the default
// exhaustive guard is what keeps it exact) on the paper's corpus, with
// the constraining predicate and minimal-compact post-processing on.
func TestBlockingTextMatches(t *testing.T) {
	recs := append(table1(), reportRecords()...)
	exclude := func(a, b int) bool { return a == 0 && b == 1 }
	for _, opts := range []Options{
		{},
		{MinimalCompact: true},
		{Exclude: exclude},
	} {
		plain, err := New(recs, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.GroupsBySize(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		bopts := opts
		bopts.Blocking = &BlockingOptions{Parallel: 2}
		d, err := New(recs, bopts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.GroupsBySize(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opts %+v: blocked %v, want %v", opts, got, want)
		}
	}
}

func TestBlockingReport(t *testing.T) {
	recs := blockingRecords(7, 200)
	d, err := New(recs, Options{CustomMetric: blockingDist, Blocking: &BlockingOptions{Parallel: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupsBySize(3, 3); err != nil {
		t.Fatal(err)
	}
	rep := d.LastReport()
	if rep.Solves != 1 || rep.BlocksSolved == 0 {
		t.Fatalf("blocked report: %+v", rep)
	}
	if rep.Lookups == 0 || rep.IndexProbes == 0 || rep.DistanceCalls == 0 {
		t.Errorf("blocked solve did no counted work: %+v", rep)
	}
	if rep.Groups == 0 {
		t.Errorf("partition stats missing: %+v", rep)
	}
	if rep.CacheComputes != 0 || rep.CacheHits != 0 {
		t.Errorf("blocked path must not touch the phase-1 cache: %+v", rep)
	}
	if s := rep.String(); !strings.Contains(s, "block solves") {
		t.Errorf("String() lacks the blocked line: %q", s)
	}
	// The cumulative report accumulates the blocked counters too.
	if _, err := d.GroupsByDiameter(1e-4, 3); err != nil {
		t.Fatal(err)
	}
	total := d.Report()
	if total.Solves != 2 || total.BlocksSolved <= rep.BlocksSolved {
		t.Errorf("cumulative blocked report: %+v", total)
	}
}

func TestBlockingTracerSpans(t *testing.T) {
	col := &obs.Collector{}
	recs := blockingRecords(3, 150)
	d, err := New(recs, Options{
		CustomMetric: blockingDist,
		Tracer:       &obs.Tracer{Sink: col},
		Blocking:     &BlockingOptions{Parallel: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupsBySize(3, 3); err != nil {
		t.Fatal(err)
	}
	b, ok := col.Find("dedup.solve/blocked")
	if !ok {
		t.Fatalf("blocked span not emitted; got %+v", col.Spans())
	}
	if b.Counters["blocks"] == 0 || b.Counters["blocks_solved"] == 0 {
		t.Errorf("blocked span counters: %v", b.Counters)
	}
	root, _ := col.Find("dedup.solve")
	if root.Counters["distance_calls"] == 0 {
		t.Errorf("root span distance_calls missing: %v", root.Counters)
	}
}

func TestBlockingOnBlockSolved(t *testing.T) {
	recs := blockingRecords(5, 200)
	var calls int
	d, err := New(recs, Options{
		CustomMetric: blockingDist,
		Blocking: &BlockingOptions{OnBlockSolved: func(size int, dur time.Duration) {
			if size <= 0 || dur < 0 {
				t.Errorf("callback got size %d dur %v", size, dur)
			}
			calls++
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GroupsBySize(3, 3); err != nil {
		t.Fatal(err)
	}
	if got := d.LastReport().BlocksSolved; calls != got {
		t.Errorf("callback fired %d times, report says %d block solves", calls, got)
	}
}

func TestBlockingOptionErrors(t *testing.T) {
	recs := reportRecords()
	for _, opts := range []Options{
		{Blocking: &BlockingOptions{}, UseSQL: true},
		{Blocking: &BlockingOptions{}, Index: IndexQGram},
		{Blocking: &BlockingOptions{}, Index: IndexVPTree},
		{Blocking: &BlockingOptions{}, Index: IndexMinHash},
		{Blocking: &BlockingOptions{}, Approximate: true},
	} {
		if _, err := New(recs, opts); err == nil {
			t.Errorf("New with %+v should fail", opts)
		}
	}
	// The exact index, spelled explicitly or defaulted, is fine.
	if _, err := New(recs, Options{Blocking: &BlockingOptions{}, Index: IndexExact}); err != nil {
		t.Errorf("explicit exact index rejected: %v", err)
	}
}

func TestBlockingCtxCancel(t *testing.T) {
	recs := blockingRecords(9, 200)
	d, err := New(recs, Options{CustomMetric: blockingDist, Blocking: &BlockingOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.GroupsBySizeCtx(ctx, 3, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled blocked solve returned %v", err)
	}
}

package fuzzydup

import "sort"

// The elimination half of "detect and eliminate": once duplicate groups
// are known, each group is collapsed to a single representative record.

// Representative returns the medoid of a group: the member with the
// smallest total distance to the other members (ties broken by the lowest
// record index). For singletons it returns the sole member; it panics on
// an empty group, which no Groups value ever contains.
func (d *Deduper) Representative(group []int) int {
	if len(group) == 0 {
		panic("fuzzydup: representative of empty group")
	}
	best, bestTotal := group[0], -1.0
	for _, cand := range group {
		total := 0.0
		for _, other := range group {
			if other != cand {
				total += d.Distance(cand, other)
			}
		}
		if bestTotal < 0 || total < bestTotal || (total == bestTotal && cand < best) {
			best, bestTotal = cand, total
		}
	}
	return best
}

// Eliminate collapses each duplicate group to its representative and
// returns the surviving record indices in ascending order, plus a map
// from every eliminated record to the representative that replaced it.
func (d *Deduper) Eliminate(groups Groups) (kept []int, replacedBy map[int]int) {
	replacedBy = make(map[int]int)
	for _, g := range groups {
		rep := d.Representative(g)
		kept = append(kept, rep)
		for _, id := range g {
			if id != rep {
				replacedBy[id] = rep
			}
		}
	}
	sort.Ints(kept)
	return kept, replacedBy
}

// Deduplicated runs Eliminate and materializes the surviving records.
func (d *Deduper) Deduplicated(groups Groups) []Record {
	kept, _ := d.Eliminate(groups)
	out := make([]Record, len(kept))
	for i, id := range kept {
		out[i] = d.records[id]
	}
	return out
}

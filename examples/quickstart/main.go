// Quickstart: find fuzzy duplicates in a small music relation — the
// paper's Table 1 — with the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fuzzydup"
)

func main() {
	records := []fuzzydup.Record{
		{"The Doors", "LA Woman"},
		{"Doors", "LA Woman"},
		{"The Beatles", "A Little Help from My Friends"},
		{"Beatles, The", "With A Little Help From My Friend"},
		{"Shania Twain", "Im Holdin on to Love"},
		{"Twian, Shania", "I'm Holding On To Love"},
		{"4 th Elemynt", "Ears/Eyes"},
		{"4 th Elemynt", "Ears/Eyes - Part II"},
		{"4th Elemynt", "Ears/Eyes - Part III"},
		{"4 th Elemynt", "Ears/Eyes - Part IV"},
		{"Aaliyah", "Are You Ready"},
		{"AC DC", "Are You Ready"},
		{"Bob Dylan", "Are You Ready"},
		{"Creed", "Are You Ready"},
	}

	d, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricEdit})
	if err != nil {
		log.Fatal(err)
	}

	// DE_S(K=3): duplicate groups of at most 3 tuples, sparse-neighborhood
	// threshold c=4 (each member's neighborhood must hold fewer than 4
	// tuples).
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("duplicate groups found by DE_S(3), c=4:")
	for _, g := range groups.Duplicates() {
		fmt.Println("  ---")
		for _, id := range g {
			fmt.Printf("  %s — %s\n", records[id][0], records[id][1])
		}
	}

	// Contrast with the global-threshold baseline: to catch the Beatles
	// pair (distance ~0.29) it must also merge the four "Are You Ready"
	// covers and the Ears/Eyes series into blobs.
	thr, err := d.SingleLinkage(0.31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsingle-linkage at θ=0.31 for comparison:")
	for _, g := range thr.Duplicates() {
		fmt.Println("  ---")
		for _, id := range g {
			fmt.Printf("  %s — %s\n", records[id][0], records[id][1])
		}
	}
}

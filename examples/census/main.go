// Census-style record linkage with constraining knowledge (Section 4.4.1):
// records with conflicting middle initials are never the same person, no
// matter how close their names and addresses look. The predicate is
// injected through Options.Exclude and the groups are bounded by diameter
// (DE_D), the cut that gives finer control over match tightness.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"fuzzydup"
	"fuzzydup/internal/dataset"
	"fuzzydup/internal/eval"
)

func main() {
	ds := dataset.Census(dataset.Config{Size: 1200, Seed: 19})
	records := make([]fuzzydup.Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = fuzzydup.Record(r)
	}

	// Negative knowledge: conflicting middle initials rule a pair out.
	// (Field 2 is the middle initial; single-character fields survive the
	// error channel untouched, so a conflict is meaningful.)
	conflictingInitials := func(a, b int) bool {
		ma, mb := ds.Records[a][2], ds.Records[b][2]
		return ma != "" && mb != "" && ma != mb
	}

	run := func(name string, opts fuzzydup.Options) fuzzydup.Groups {
		d, err := fuzzydup.New(records, opts)
		if err != nil {
			log.Fatal(err)
		}
		groups, err := d.GroupsByDiameter(0.25, 4)
		if err != nil {
			log.Fatal(err)
		}
		pr := eval.PrecisionRecall(groups, ds.Truth)
		fmt.Printf("%-28s precision %.3f  recall %.3f  F1 %.3f\n",
			name, pr.Precision, pr.Recall, pr.F1())
		return groups
	}

	fmt.Printf("%d census records, %d true duplicate groups\n\n", ds.Len(), len(ds.Truth))
	plain := run("DE_D(0.25), c=4", fuzzydup.Options{})
	constrained := run("  + initial constraint", fuzzydup.Options{Exclude: conflictingInitials})

	// Show a pair the constraint split.
	plainPairs := map[[2]int]bool{}
	for _, p := range plain.Pairs() {
		plainPairs[p] = true
	}
	for _, p := range constrained.Pairs() {
		delete(plainPairs, p)
	}
	fmt.Println("\npairs rejected by the constraint:")
	shown := 0
	for p := range plainPairs {
		if !conflictingInitials(p[0], p[1]) {
			continue
		}
		a, b := ds.Records[p[0]], ds.Records[p[1]]
		fmt.Printf("  %s, %s %s. / %s, %s %s.\n", a[0], a[1], a[2], b[0], b[1], b[2])
		shown++
		if shown == 5 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("  (none in this run — the structural criteria already kept them apart)")
	}
}

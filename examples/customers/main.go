// Customer-record deduplication with an estimated SN threshold: the
// Section 4.3 workflow. An analyst knows roughly what fraction of a
// customer table is duplicated (say from a sample audit) but has no feel
// for neighborhood growths; EstimateC turns the former into the latter.
// The fuzzy match similarity (fms) metric handles abbreviation noise
// ("Corporation" vs "Corp") that defeats plain edit distance.
//
//	go run ./examples/customers
package main

import (
	"fmt"
	"log"

	"fuzzydup"
	"fuzzydup/internal/dataset"
	"fuzzydup/internal/eval"
)

func main() {
	ds := dataset.Org(dataset.Config{Size: 1200, Seed: 7, DupFraction: 0.2})
	records := make([]fuzzydup.Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = fuzzydup.Record(r)
	}

	d, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricFMS})
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's estimate: about 20% of rows are duplicated entries.
	c, err := d.EstimateC(0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated sparse-neighborhood threshold c = %g\n", c)

	groups, err := d.GroupsBySize(3, c)
	if err != nil {
		log.Fatal(err)
	}
	pr := eval.PrecisionRecall(groups, ds.Truth)
	fmt.Printf("DE_S(3) at estimated c: precision %.3f, recall %.3f (F1 %.3f)\n",
		pr.Precision, pr.Recall, pr.F1())

	fmt.Println("\nsample merged customers:")
	shown := 0
	for _, g := range groups.Duplicates() {
		if shown == 5 {
			break
		}
		fmt.Println("  ---")
		for _, id := range g {
			r := ds.Records[id]
			fmt.Printf("  %s | %s | %s, %s %s\n", r[0], r[1], r[2], r[3], r[4])
		}
		shown++
	}

	// The same pipeline can run its partitioning phase as SQL against the
	// embedded engine — the paper's client-over-database architecture —
	// with an identical result.
	dsql, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricFMS, UseSQL: true})
	if err != nil {
		log.Fatal(err)
	}
	sqlGroups, err := dsql.GroupsBySize(3, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL-mode partitioning produced %d duplicate groups (in-memory: %d)\n",
		len(sqlGroups.Duplicates()), len(groups.Duplicates()))
}

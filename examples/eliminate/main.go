// End-to-end elimination: detect duplicate groups, pick a representative
// per group (the medoid), and materialize the cleaned relation — the
// "eliminate" half of detect-and-eliminate, with before/after counts the
// paper's introduction motivates (mailing costs, analytic-query skew).
//
//	go run ./examples/eliminate
package main

import (
	"fmt"
	"log"

	"fuzzydup"
	"fuzzydup/internal/dataset"
)

func main() {
	ds := dataset.Restaurants(dataset.Config{Size: 600, Seed: 99, DupFraction: 0.3})
	records := make([]fuzzydup.Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = fuzzydup.Record(r)
	}

	d, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricJaroWinkler})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		log.Fatal(err)
	}

	kept, replacedBy := d.Eliminate(groups)
	fmt.Printf("catalog: %d entries, %d duplicate groups detected\n", ds.Len(), len(groups.Duplicates()))
	fmt.Printf("after elimination: %d entries (%d removed)\n\n", len(kept), len(replacedBy))

	fmt.Println("sample merges (removed -> kept):")
	shown := 0
	for gone, rep := range replacedBy {
		fmt.Printf("  %-32q -> %q\n", records[gone][0], records[rep][0])
		shown++
		if shown == 6 {
			break
		}
	}

	cleaned := d.Deduplicated(groups)
	fmt.Printf("\ncleaned relation has %d records; first three:\n", len(cleaned))
	for _, r := range cleaned[:3] {
		fmt.Printf("  %s\n", r[0])
	}
}

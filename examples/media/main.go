// Media catalog deduplication: a realistic music relation with multi-part
// tracks and cover series, comparing the CS/SN framework against the
// global-threshold baseline on precision and recall.
//
//	go run ./examples/media
package main

import (
	"fmt"
	"log"

	"fuzzydup"
	"fuzzydup/internal/dataset"
	"fuzzydup/internal/eval"
)

func main() {
	// A 1,000-tuple media relation with ground truth: ~25% of tuples are
	// duplicates; confusable series ("X - Part II/III", covers of one
	// title) are planted exactly as the paper's Table 1 motivates.
	ds := dataset.Media(dataset.Config{Size: 1000, Seed: 42})
	records := make([]fuzzydup.Record, ds.Len())
	for i, r := range ds.Records {
		records[i] = fuzzydup.Record(r)
	}
	d, err := fuzzydup.New(records, fuzzydup.Options{Metric: fuzzydup.MetricEdit})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d tuples, %d true duplicate groups\n\n", ds.Len(), len(ds.Truth))
	fmt.Printf("%-26s %-10s %-10s %-10s\n", "algorithm", "precision", "recall", "F1")

	report := func(name string, groups fuzzydup.Groups) {
		pr := eval.PrecisionRecall(groups, ds.Truth)
		fmt.Printf("%-26s %-10.3f %-10.3f %-10.3f\n", name, pr.Precision, pr.Recall, pr.F1())
	}

	for _, k := range []int{2, 3, 5} {
		groups, err := d.GroupsBySize(k, 4)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("DE_S(K=%d), c=4", k), groups)
	}
	for _, theta := range []float64{0.2, 0.3, 0.4} {
		groups, err := d.GroupsByDiameter(theta, 4)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("DE_D(θ=%.1f), c=4", theta), groups)
	}
	for _, theta := range []float64{0.2, 0.3, 0.4} {
		groups, err := d.SingleLinkage(theta)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("single-linkage θ=%.1f", theta), groups)
	}

	fmt.Println("\nAt matched recall, DE precision stays high where the global")
	fmt.Println("threshold collapses confusable series into false-positive blobs.")
}

package fuzzydup_test

import (
	"fmt"
	"log"

	"fuzzydup"
)

// The motivating music relation of the paper's Table 1 (abridged).
func exampleRecords() []fuzzydup.Record {
	return []fuzzydup.Record{
		{"The Doors", "LA Woman"},
		{"Doors", "LA Woman"},
		{"Shania Twain", "Im Holdin on to Love"},
		{"Twian, Shania", "I'm Holding On To Love"},
		{"Aaliyah", "Are You Ready"},
		{"AC DC", "Are You Ready"},
		{"Bob Dylan", "Are You Ready"},
		{"Creed", "Are You Ready"},
	}
}

func ExampleDeduper_GroupsBySize() {
	d, err := fuzzydup.New(exampleRecords(), fuzzydup.Options{Metric: fuzzydup.MetricEdit})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := d.GroupsBySize(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range groups.Duplicates() {
		fmt.Println(g)
	}
	// Output:
	// [0 1]
	// [2 3]
}

func ExampleDeduper_GroupsByDiameter() {
	d, err := fuzzydup.New(exampleRecords(), fuzzydup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := d.GroupsByDiameter(0.35, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(groups.Duplicates()), "duplicate groups")
	// Output:
	// 2 duplicate groups
}

func ExampleDeduper_SingleLinkage() {
	d, err := fuzzydup.New(exampleRecords(), fuzzydup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// At a threshold high enough for the Twain pair (distance ~0.29), the
	// global-threshold baseline also merges the four "Are You Ready"
	// covers — the failure mode the CS/SN criteria avoid.
	groups, err := d.SingleLinkage(0.31)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range groups.Duplicates() {
		fmt.Println(g)
	}
	// Output:
	// [0 1]
	// [2 3]
	// [4 5 6 7]
}

func ExampleDeduper_Eliminate() {
	d, err := fuzzydup.New(exampleRecords(), fuzzydup.Options{})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := d.GroupsBySize(2, 4)
	if err != nil {
		log.Fatal(err)
	}
	kept, replaced := d.Eliminate(groups)
	fmt.Println("kept:", kept)
	fmt.Println("removed:", len(replaced))
	// Output:
	// kept: [0 2 4 5 6 7]
	// removed: 2
}
